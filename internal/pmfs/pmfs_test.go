package pmfs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pmtest/internal/core"
	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

const devSize = 1 << 24 // 16 MiB

func newFS(t testing.TB, sink trace.Sink) *FS {
	t.Helper()
	dev := pmem.New(devSize, sink)
	fs, err := Mkfs(dev, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestCreateLookupList(t *testing.T) {
	fs := newFS(t, nil)
	ino, err := fs.CreateFile("alpha")
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs.Lookup("alpha")
	if err != nil || got != ino {
		t.Fatalf("Lookup = %d, %v; want %d", got, err, ino)
	}
	if _, err := fs.CreateFile("alpha"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	fs.CreateFile("beta")
	names, _ := fs.ListDir("")
	if len(names) != 2 {
		t.Fatalf("ListDir = %v", names)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newFS(t, nil)
	ino, _ := fs.CreateFile("f")
	data := make([]byte, 10000) // crosses block boundaries
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := fs.WriteFile(ino, 100, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10000)
	n, err := fs.ReadFile(ino, 100, buf)
	if err != nil || n != 10000 {
		t.Fatalf("Read = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("data mismatch")
	}
	if size, _ := fs.Stat("f"); size != 10100 {
		t.Fatalf("Stat = %d, want 10100", size)
	}
}

func TestReadHoleReturnsZeros(t *testing.T) {
	fs := newFS(t, nil)
	ino, _ := fs.CreateFile("f")
	fs.WriteFile(ino, 2*BlockSize, []byte{9})
	buf := make([]byte, 16)
	n, err := fs.ReadFile(ino, 0, buf)
	if err != nil || n != 16 {
		t.Fatalf("Read = %d, %v", n, err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole must read as zeros")
		}
	}
}

func TestReadPastEOF(t *testing.T) {
	fs := newFS(t, nil)
	ino, _ := fs.CreateFile("f")
	fs.WriteFile(ino, 0, []byte("abc"))
	buf := make([]byte, 10)
	n, _ := fs.ReadFile(ino, 100, buf)
	if n != 0 {
		t.Fatalf("read past EOF = %d", n)
	}
	n, _ = fs.ReadFile(ino, 1, buf)
	if n != 2 {
		t.Fatalf("short read = %d, want 2", n)
	}
}

func TestUnlinkFreesEverything(t *testing.T) {
	fs := newFS(t, nil)
	ino, _ := fs.CreateFile("f")
	fs.WriteFile(ino, 0, make([]byte, 3*BlockSize))
	in0, bl0 := fs.Usage()
	if in0 != 1 || bl0 != 3 {
		t.Fatalf("usage before = %d inodes, %d blocks", in0, bl0)
	}
	if err := fs.Unlink("f"); err != nil {
		t.Fatal(err)
	}
	in1, bl1 := fs.Usage()
	if in1 != 0 || bl1 != 0 {
		t.Fatalf("usage after = %d inodes, %d blocks", in1, bl1)
	}
	if _, err := fs.Lookup("f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup after unlink: %v", err)
	}
}

func TestErrors(t *testing.T) {
	fs := newFS(t, nil)
	if _, err := fs.CreateFile(string(make([]byte, 100))); !errors.Is(err, ErrNameTooBig) {
		t.Fatalf("long name: %v", err)
	}
	ino, _ := fs.CreateFile("f")
	if err := fs.WriteFile(ino, NumDirect*BlockSize, []byte{1}); !errors.Is(err, ErrFileTooBig) {
		t.Fatalf("big write: %v", err)
	}
	if err := fs.WriteFile(55, 0, []byte{1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("bad inode: %v", err)
	}
	if err := fs.Unlink("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unlink missing: %v", err)
	}
	if _, _, err := Mount(pmem.New(devSize, nil)); err == nil {
		t.Fatal("mount of raw device must fail")
	}
}

func TestMountSeesDurableState(t *testing.T) {
	fs := newFS(t, nil)
	ino, _ := fs.CreateFile("persist-me")
	fs.WriteFile(ino, 0, []byte("hello"))
	// Reopen from the durable image only.
	fs2, info, err := Mount(pmem.FromImage(fs.Device().Image(), nil))
	if err != nil {
		t.Fatal(err)
	}
	if info.RolledBack != 0 {
		t.Fatalf("unexpected rollback: %+v", info)
	}
	ino2, err := fs2.Lookup("persist-me")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	fs2.ReadFile(ino2, 0, buf)
	if string(buf) != "hello" {
		t.Fatalf("data after remount = %q", buf)
	}
}

// TestCrashDuringCreateRollsBack: crash with a published, uncommitted
// journal must roll back to "file absent" in every crash state.
func TestCrashDuringCreateRollsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		fs := newFS(t, nil)
		fs.CreateFile("stable")
		// Hand-drive a create transaction and crash before commit.
		ino, _ := fs.findFreeInode()
		slot, _ := fs.findFreeDentry()
		tx := fs.beginTx()
		tx.logRange(fs.inodeOff(ino), InodeSize)
		tx.logRange(fs.dentryOff(slot), DentrySize)
		tx.publish()
		inode := make([]byte, InodeSize)
		inode[inUsed] = 1
		tx.modify(fs.inodeOff(ino), inode)
		de := make([]byte, DentrySize)
		putU64(de[deIno:], ino)
		putU64(de[deParent:], RootIno)
		putU16(de[deLen:], 7)
		copy(de[deName:], "interim")
		tx.modify(fs.dentryOff(slot), de)
		// Crash here (no commit).
		img := fs.Device().SampleCrash(rng, pmem.CrashOptions{})
		fs2, _, err := Mount(pmem.FromImage(img, nil))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs2.Lookup("interim"); err == nil {
			t.Fatalf("trial %d: uncommitted file visible after recovery", trial)
		}
		if _, err := fs2.Lookup("stable"); err != nil {
			t.Fatalf("trial %d: committed file lost: %v", trial, err)
		}
	}
}

// TestCommittedOpsSurviveCrashes: after CreateFile/WriteFile return, the
// result must survive any crash.
func TestCommittedOpsSurviveCrashes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	fs := newFS(t, nil)
	ino, _ := fs.CreateFile("f")
	fs.WriteFile(ino, 0, []byte("payload!"))
	for i := 0; i < 25; i++ {
		img := fs.Device().SampleCrash(rng, pmem.CrashOptions{})
		fs2, _, err := Mount(pmem.FromImage(img, nil))
		if err != nil {
			t.Fatal(err)
		}
		ino2, err := fs2.Lookup("f")
		if err != nil {
			t.Fatalf("sample %d: file lost: %v", i, err)
		}
		buf := make([]byte, 8)
		fs2.ReadFile(ino2, 0, buf)
		if string(buf) != "payload!" {
			t.Fatalf("sample %d: data = %q", i, buf)
		}
	}
}

// --- Engine integration: the Table 6 bugs ----------------------------------

type recorder struct{ ops *[]trace.Op }

func (r recorder) Record(op trace.Op, _ int) { *r.ops = append(*r.ops, op) }

func runOp(t *testing.T, bugs Bugs, op func(fs *FS)) core.Report {
	t.Helper()
	var ops []trace.Op
	fs := newFS(t, recorder{&ops})
	fs.SetBugs(bugs)
	fs.SetAnnotations(true)
	ino, _ := fs.CreateFile("seed")
	fs.WriteFile(ino, 0, make([]byte, 64))
	ops = ops[:0]
	op(fs)
	return core.CheckTrace(core.X86{}, &trace.Trace{Ops: ops})
}

func writeOp(fs *FS) {
	ino, _ := fs.Lookup("seed")
	fs.WriteFile(ino, 0, make([]byte, 256))
}

func TestEngineCleanWrite(t *testing.T) {
	r := runOp(t, Bugs{}, writeOp)
	if !r.Clean() {
		t.Fatalf("clean write flagged: %s", r.Summary())
	}
}

func TestEngineBug1DoubleFlushCommit(t *testing.T) {
	r := runOp(t, Bugs{DoubleFlushCommit: true}, writeOp)
	if !r.HasCode(core.CodeDuplicateWriteback) {
		t.Fatalf("journal.c:632 duplicate flush must WARN: %s", r.Summary())
	}
	if r.Fails() != 0 {
		t.Fatalf("performance bug must not FAIL: %s", r.Summary())
	}
}

func TestEngineKnownBugDoubleFlushData(t *testing.T) {
	r := runOp(t, Bugs{DoubleFlushData: true}, writeOp)
	if !r.HasCode(core.CodeDuplicateWriteback) {
		t.Fatalf("xips.c double flush must WARN: %s", r.Summary())
	}
}

func TestEngineKnownBugFlushUnmapped(t *testing.T) {
	r := runOp(t, Bugs{FlushUnmapped: true}, writeOp)
	if !r.HasCode(core.CodeUnnecessaryWriteback) {
		t.Fatalf("files.c unmapped flush must WARN: %s", r.Summary())
	}
}

func TestEngineSkipDataFlush(t *testing.T) {
	r := runOp(t, Bugs{SkipDataFlush: true}, writeOp)
	if !r.HasCode(core.CodeNotPersisted) {
		t.Fatalf("unflushed data must FAIL isPersist: %s", r.Summary())
	}
}

func TestEngineSkipInodeFlush(t *testing.T) {
	r := runOp(t, Bugs{SkipInodeFlush: true}, func(fs *FS) {
		fs.CreateFile("newfile")
	})
	if !r.HasCode(core.CodeNotPersisted) {
		t.Fatalf("unflushed journaled metadata must FAIL: %s", r.Summary())
	}
}

func TestEngineSkipLogEntryFlush(t *testing.T) {
	r := runOp(t, Bugs{SkipLogEntryFlush: true}, func(fs *FS) {
		fs.CreateFile("newfile")
	})
	if !r.HasCode(core.CodeOrderViolation) {
		t.Fatalf("unflushed LEs must violate LE-before-publish order: %s", r.Summary())
	}
}

func TestGroundTruthSkipInodeFlushBreaksRecovery(t *testing.T) {
	// Without flushing journaled metadata before commit, a crash after
	// the journal is cleared can lose the create.
	rng := rand.New(rand.NewSource(11))
	broken := false
	for i := 0; i < 60 && !broken; i++ {
		fs := newFS(t, nil)
		fs.SetBugs(Bugs{SkipInodeFlush: true})
		fs.CreateFile("x")
		img := fs.Device().SampleCrash(rng, pmem.CrashOptions{})
		fs2, _, err := Mount(pmem.FromImage(img, nil))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs2.Lookup("x"); err != nil {
			broken = true
		}
	}
	if !broken {
		t.Fatal("SkipInodeFlush never lost a committed create")
	}
}

// TestQuickFilebenchModel drives random create/write/unlink sequences and
// compares against an in-memory model, then remounts from the durable
// image and compares again.
func TestQuickFilebenchModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := newFS(t, nil)
		model := map[string][]byte{}
		names := []string{"a", "b", "c", "d"}
		for i := 0; i < 30; i++ {
			name := names[rng.Intn(len(names))]
			switch rng.Intn(3) {
			case 0:
				_, err := fs.CreateFile(name)
				if _, exists := model[name]; exists {
					if !errors.Is(err, ErrExists) {
						return false
					}
				} else if err == nil {
					model[name] = []byte{}
				}
			case 1:
				if _, ok := model[name]; !ok {
					continue
				}
				data := make([]byte, rng.Intn(3000)+1)
				rng.Read(data)
				ino, _ := fs.Lookup(name)
				if err := fs.WriteFile(ino, 0, data); err != nil {
					return false
				}
				cur := model[name]
				if len(data) > len(cur) {
					cur = append(cur, make([]byte, len(data)-len(cur))...)
				}
				copy(cur, data)
				model[name] = cur
			case 2:
				err := fs.Unlink(name)
				if _, ok := model[name]; ok {
					if err != nil {
						return false
					}
					delete(model, name)
				} else if err == nil {
					return false
				}
			}
		}
		check := func(f2 *FS) bool {
			for name, want := range model {
				ino, err := f2.Lookup(name)
				if err != nil {
					return false
				}
				buf := make([]byte, len(want))
				n, _ := f2.ReadFile(ino, 0, buf)
				if n != len(want) || !bytes.Equal(buf, want) {
					return false
				}
			}
			names, err := f2.ListDir("")
			if err != nil {
				return false
			}
			return len(names) == len(model)
		}
		if !check(fs) {
			return false
		}
		fs2, _, err := Mount(pmem.FromImage(fs.Device().Image(), nil))
		if err != nil {
			return false
		}
		return check(fs2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
