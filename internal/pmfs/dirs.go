package pmfs

import (
	"strings"
)

// Directory hierarchy. Dentries carry a parent-inode field, so a path
// like "a/b/f" resolves by walking components from the root directory
// (inode 1, created by Mkfs). All metadata changes remain journaled.
//
// Dentry layout (64 bytes):
//
//	0  inode number
//	8  parent directory inode
//	16 name length (2)
//	18 name (MaxName bytes)

const (
	deIno    = 0
	deParent = 8
	deLen    = 16
	deName   = 18

	// RootIno is the root directory's inode, created by Mkfs.
	RootIno = 1

	inodeFile = 1
	inodeDir  = 2
)

// splitPath returns the parent components and the final name of a
// slash-separated path ("a/b/f" → ["a","b"], "f"). Leading slashes and
// empty components are ignored.
func splitPath(path string) (dirs []string, name string) {
	parts := make([]string, 0, 4)
	for _, p := range strings.Split(path, "/") {
		if p != "" {
			parts = append(parts, p)
		}
	}
	if len(parts) == 0 {
		return nil, ""
	}
	if len(parts) == 1 {
		return nil, parts[0]
	}
	return parts[:len(parts)-1], parts[len(parts)-1]
}

// resolveDir walks the directory components, returning the inode of the
// directory that should contain the final name.
func (fs *FS) resolveDir(dirs []string) (uint64, error) {
	cur := uint64(RootIno)
	for _, comp := range dirs {
		ino, err := fs.lookupIn(cur, comp)
		if err != nil {
			return 0, err
		}
		if fs.dev.Load8(fs.inodeOff(ino)+inUsed) != inodeDir {
			return 0, ErrNotADir
		}
		cur = ino
	}
	return cur, nil
}

// lookupIn finds name within directory dir.
func (fs *FS) lookupIn(dir uint64, name string) (uint64, error) {
	slot, ino, err := fs.lookupSlotIn(dir, name)
	_ = slot
	return ino, err
}

func (fs *FS) lookupSlotIn(dir uint64, name string) (slot, ino uint64, err error) {
	for i := uint64(0); i < fs.nDentry; i++ {
		off := fs.dentryOff(i)
		in := fs.dev.Load64(off + deIno)
		if in == 0 || fs.dev.Load64(off+deParent) != dir {
			continue
		}
		n := getU16(fs.dev.LoadBytes(off+deLen, 2))
		if string(fs.dev.LoadBytes(off+deName, uint64(n))) == name {
			return i, in, nil
		}
	}
	return 0, 0, ErrNotFound
}

// parentOf returns the parent directory of the directory with inode ino
// by scanning for its dentry.
func (fs *FS) parentOf(ino uint64) (uint64, bool) {
	for i := uint64(0); i < fs.nDentry; i++ {
		off := fs.dentryOff(i)
		if fs.dev.Load64(off+deIno) == ino {
			return fs.dev.Load64(off + deParent), true
		}
	}
	return 0, false
}

// Mkdir creates a directory at path; parents must exist.
func (fs *FS) Mkdir(path string) (uint64, error) {
	defer fs.section()
	return fs.createNode(path, inodeDir)
}

// createNode allocates an inode+dentry of the given kind under the
// resolved parent, journaled.
func (fs *FS) createNode(path string, kind byte) (uint64, error) {
	dirs, name := splitPath(path)
	if name == "" {
		return 0, ErrNotFound
	}
	if len(name) > MaxName {
		return 0, ErrNameTooBig
	}
	parent, err := fs.resolveDir(dirs)
	if err != nil {
		return 0, err
	}
	if _, err := fs.lookupIn(parent, name); err == nil {
		return 0, ErrExists
	}
	ino, ok := fs.findFreeInode()
	if !ok {
		return 0, ErrNoSpace
	}
	slot, ok := fs.findFreeDentry()
	if !ok {
		return 0, ErrNoSpace
	}

	tx := fs.beginTx()
	tx.logRange(fs.inodeOff(ino), InodeSize)
	tx.logRange(fs.dentryOff(slot), DentrySize)
	tx.publish()
	inode := make([]byte, InodeSize)
	inode[inUsed] = kind
	tx.modify(fs.inodeOff(ino), inode)
	de := make([]byte, DentrySize)
	putU64(de[deIno:], ino)
	putU64(de[deParent:], parent)
	putU16(de[deLen:], uint16(len(name)))
	copy(de[deName:], name)
	tx.modify(fs.dentryOff(slot), de)
	tx.commit()
	return ino, nil
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(path string) error {
	defer fs.section()
	dirs, name := splitPath(path)
	parent, err := fs.resolveDir(dirs)
	if err != nil {
		return err
	}
	slot, ino, err := fs.lookupSlotIn(parent, name)
	if err != nil {
		return err
	}
	if fs.dev.Load8(fs.inodeOff(ino)+inUsed) != inodeDir {
		return ErrNotADir
	}
	// Must be empty.
	for i := uint64(0); i < fs.nDentry; i++ {
		off := fs.dentryOff(i)
		if fs.dev.Load64(off+deIno) != 0 && fs.dev.Load64(off+deParent) == ino {
			return ErrNotEmpty
		}
	}
	tx := fs.beginTx()
	tx.logRange(fs.dentryOff(slot), 8)
	tx.logRange(fs.inodeOff(ino), InodeSize)
	tx.publish()
	tx.modify64(fs.dentryOff(slot), 0)
	tx.modify(fs.inodeOff(ino), make([]byte, InodeSize))
	tx.commit()
	return nil
}

// IsDir reports whether path names a directory.
func (fs *FS) IsDir(path string) (bool, error) {
	dirs, name := splitPath(path)
	if name == "" {
		return true, nil // the root
	}
	parent, err := fs.resolveDir(dirs)
	if err != nil {
		return false, err
	}
	ino, err := fs.lookupIn(parent, name)
	if err != nil {
		return false, err
	}
	return fs.dev.Load8(fs.inodeOff(ino)+inUsed) == inodeDir, nil
}
