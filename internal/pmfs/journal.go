package pmfs

import (
	"pmtest/internal/trace"
)

// The undo journal. A metadata transaction:
//
//  1. appends one undo log entry (LE) per modified range, each tagged
//     with the current generation id, and writes the entries back;
//  2. fences, then publishes the entry count (sbNLive) with a barrier —
//     from here a crash rolls the transaction back;
//  3. modifies metadata in place, writes it back, fences;
//  4. appends a COMMIT log entry (pmfs_commit_logentry), flushes it and
//     fences, then clears sbNLive with a barrier.
//
// Recovery: sbNLive > 0 and no commit entry → roll back (apply LEs in
// reverse); commit entry present → updates already durable, just clear.
//
// Log entry layout (64 bytes, as in PMFS):
//
//	0  target address (8)
//	8  size (2) | type (1) | pad (1) | gen_id (4)
//	16 data (48)

type journalTx struct {
	fs      *FS
	ranges  []leRange
	genID   uint32
	touched []leRange // in-place ranges modified (for annotations)
}

type leRange struct{ addr, size uint64 }

func (fs *FS) leOff(i int) uint64 { return fs.journal + uint64(i)*LESize }

// beginTx starts a metadata transaction. The journal supports one
// outstanding transaction, like PMFS's per-CPU transaction slots. Each
// transaction durably bumps the generation id first, so log entries (and
// the commit record) of earlier transactions are recognizably stale —
// PMFS's gen_id mechanism.
func (fs *FS) beginTx() *journalTx {
	fs.leUsed = 0
	gen := uint32(fs.dev.Load64(sbGenID)) + 1
	fs.dev.Store64(sbGenID, uint64(gen))
	fs.dev.CLWBSkip(sbGenID, 8, 1)
	fs.dev.SFenceSkip(1)
	return &journalTx{fs: fs, genID: gen}
}

// logRange appends undo entries covering [addr, addr+size) (split into
// 48-byte chunks, one LE each) — pmfs_add_logentry.
//
//pmlint:ignore missedflush,missedfence publish() fences the entries (split-phase); SkipLogEntryFlush is an injected bug
func (tx *journalTx) logRange(addr, size uint64) {
	fs := tx.fs
	for off := uint64(0); off < size; off += LEDataSize {
		n := size - off
		if n > LEDataSize {
			n = LEDataSize
		}
		le := fs.leOff(fs.leUsed)
		buf := make([]byte, LESize)
		putU64(buf[0:8], addr+off)
		putU16(buf[8:10], uint16(n))
		buf[10] = leData
		putU32(buf[12:16], tx.genID)
		fs.dev.Load(addr+off, buf[16:16+n])
		fs.dev.StoreSkip(le, buf, 1)
		if !fs.bugs.SkipLogEntryFlush {
			fs.dev.CLWBSkip(le, LESize, 1)
		}
		fs.leUsed++
	}
	tx.ranges = append(tx.ranges, leRange{addr, size})
}

// publish makes the undo entries valid: fence, then persist the live
// count. After publish, in-place modification may begin.
func (tx *journalTx) publish() {
	fs := tx.fs
	fs.dev.SFenceSkip(1)
	fs.dev.Store64(sbNLive, uint64(fs.leUsed))
	fs.dev.CLWBSkip(sbNLive, 8, 1)
	fs.dev.SFenceSkip(1)
	if fs.annotate {
		// Every LE must be durable strictly before the publish word.
		fs.dev.RecordOp(trace.Op{
			Kind: trace.KindIsOrderedBefore,
			Addr: fs.journal, Size: uint64(fs.leUsed) * LESize,
			Addr2: sbNLive, Size2: 8,
		}, 1)
	}
}

// modify performs an in-place journaled update and writes it back;
// commit() fences the in-place updates (split-phase protocol).
// SkipInodeFlush is an injected bug.
func (tx *journalTx) modify(addr uint64, data []byte) {
	fs := tx.fs
	fs.dev.StoreSkip(addr, data, 1)
	if !fs.bugs.SkipInodeFlush {
		fs.dev.CLWBSkip(addr, uint64(len(data)), 1)
	}
	tx.touched = append(tx.touched, leRange{addr, uint64(len(data))})
}

// modify64 is modify for one 64-bit word.
func (tx *journalTx) modify64(addr uint64, v uint64) {
	var b [8]byte
	putU64(b[:], v)
	tx.modify(addr, b[:])
}

// commit finishes the transaction: fence the in-place updates, append the
// COMMIT entry (pmfs_commit_logentry), persist it, and clear the live
// count. The DoubleFlushCommit switch reproduces journal.c:632 — after
// flushing the commit LE it redundantly flushes the whole transaction's
// entries again (paper Fig. 13a / Table 6 Bug 1).
func (tx *journalTx) commit() {
	fs := tx.fs
	fs.dev.SFenceSkip(1)
	if fs.annotate {
		for _, r := range tx.touched {
			fs.dev.RecordOp(trace.Op{Kind: trace.KindIsPersist, Addr: r.addr, Size: r.size}, 1)
		}
	}
	// pmfs_commit_logentry: the commit record.
	le := fs.leOff(fs.leUsed)
	buf := make([]byte, LESize)
	buf[10] = leCommit
	putU32(buf[12:16], tx.genID)
	fs.dev.StoreSkip(le, buf, 1)
	fs.dev.CLWBSkip(le, LESize, 1)
	if fs.bugs.DoubleFlushCommit {
		// journal.c:632 — flush the entire transaction again even though
		// every entry (and the commit LE) has already been written back.
		fs.dev.CLWBSkip(fs.journal, uint64(fs.leUsed+1)*LESize, 1)
	}
	fs.leUsed++
	if !fs.bugs.SkipCommitFence {
		fs.dev.SFenceSkip(1)
	}
	fs.dev.Store64(sbNLive, 0)
	fs.dev.CLWBSkip(sbNLive, 8, 1)
	fs.dev.SFenceSkip(1)
}

// RecoveryInfo reports what Mount's journal recovery did.
type RecoveryInfo struct {
	// RolledBack is the number of undo entries applied (uncommitted tx).
	RolledBack int
	// Committed reports that a committed transaction's journal was simply
	// cleared.
	Committed bool
}

func (fs *FS) recoverJournal() *RecoveryInfo {
	info := &RecoveryInfo{}
	live := fs.dev.Load64(sbNLive)
	if live == 0 {
		return info
	}
	genID := uint32(fs.dev.Load64(sbGenID))
	// Look for a commit entry after the live undo entries.
	commitLE := fs.leOff(int(live))
	hdr := fs.dev.LoadBytes(commitLE, 16)
	committed := hdr[10] == leCommit && getU32(hdr[12:16]) == genID
	if committed {
		info.Committed = true
	} else {
		for i := int(live) - 1; i >= 0; i-- {
			le := fs.leOff(i)
			buf := fs.dev.LoadBytes(le, LESize)
			if getU32(buf[12:16]) != genID || buf[10] != leData {
				continue
			}
			addr := getU64(buf[0:8])
			size := uint64(getU16(buf[8:10]))
			fs.dev.Store(addr, buf[16:16+size])
			fs.dev.CLWB(addr, size)
			info.RolledBack++
		}
		fs.dev.SFence()
	}
	// Bump the generation (invalidates stale entries) and clear.
	fs.dev.Store64(sbGenID, uint64(genID)+1)
	fs.dev.CLWB(sbGenID, 8)
	fs.dev.SFence()
	fs.dev.Store64(sbNLive, 0)
	fs.dev.PersistBarrier(sbNLive, 8)
	return info
}

// --- little-endian helpers (journal entries are raw bytes) -----------------

func putU64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func putU32(b []byte, v uint32) {
	_ = b[3]
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func putU16(b []byte, v uint16) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
}

func getU64(b []byte) uint64 {
	_ = b[7]
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func getU32(b []byte) uint32 {
	_ = b[3]
	var v uint32
	for i := 0; i < 4; i++ {
		v |= uint32(b[i]) << (8 * i)
	}
	return v
}

func getU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
