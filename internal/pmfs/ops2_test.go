package pmfs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"pmtest/internal/pmem"
)

func TestAppend(t *testing.T) {
	fs := newFS(t, nil)
	ino, _ := fs.CreateFile("log")
	fs.Append(ino, []byte("hello "))
	fs.Append(ino, []byte("world"))
	buf := make([]byte, 11)
	n, err := fs.ReadFile(ino, 0, buf)
	if err != nil || n != 11 || string(buf) != "hello world" {
		t.Fatalf("read = %q (%d, %v)", buf, n, err)
	}
}

func TestTruncateShrinkReleasesBlocks(t *testing.T) {
	fs := newFS(t, nil)
	ino, _ := fs.CreateFile("f")
	fs.WriteFile(ino, 0, make([]byte, 3*BlockSize))
	if _, blocks := fs.Usage(); blocks != 3 {
		t.Fatalf("blocks = %d", blocks)
	}
	if err := fs.Truncate("f", BlockSize+10); err != nil {
		t.Fatal(err)
	}
	if size, _ := fs.Stat("f"); size != BlockSize+10 {
		t.Fatalf("size = %d", size)
	}
	if _, blocks := fs.Usage(); blocks != 2 {
		t.Fatalf("blocks after truncate = %d, want 2", blocks)
	}
	// Rewriting past the end reallocates.
	if err := fs.WriteFile(ino, 2*BlockSize+100, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	fs.ReadFile(ino, 2*BlockSize+100, buf)
	if string(buf) != "tail" {
		t.Fatalf("tail = %q", buf)
	}
}

func TestTruncateExtendReadsZeros(t *testing.T) {
	fs := newFS(t, nil)
	ino, _ := fs.CreateFile("f")
	fs.WriteFile(ino, 0, []byte("abc"))
	if err := fs.Truncate("f", 100); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	n, _ := fs.ReadFile(ino, 0, buf)
	if n != 100 {
		t.Fatalf("read = %d", n)
	}
	if !bytes.Equal(buf[:3], []byte("abc")) || buf[50] != 0 {
		t.Fatal("extend semantics wrong")
	}
}

func TestTruncateErrors(t *testing.T) {
	fs := newFS(t, nil)
	if err := fs.Truncate("ghost", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	fs.CreateFile("f")
	if err := fs.Truncate("f", NumDirect*BlockSize+1); !errors.Is(err, ErrFileTooBig) {
		t.Fatalf("err = %v", err)
	}
}

func TestRename(t *testing.T) {
	fs := newFS(t, nil)
	ino, _ := fs.CreateFile("before")
	fs.WriteFile(ino, 0, []byte("payload"))
	if err := fs.Rename("before", "after"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup("before"); !errors.Is(err, ErrNotFound) {
		t.Fatal("old name still resolves")
	}
	got, err := fs.Lookup("after")
	if err != nil || got != ino {
		t.Fatalf("Lookup(after) = %d, %v", got, err)
	}
	buf := make([]byte, 7)
	fs.ReadFile(got, 0, buf)
	if string(buf) != "payload" {
		t.Fatalf("data = %q", buf)
	}
}

func TestRenameErrors(t *testing.T) {
	fs := newFS(t, nil)
	fs.CreateFile("a")
	fs.CreateFile("b")
	if err := fs.Rename("a", "b"); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
	if err := fs.Rename("ghost", "c"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := fs.Rename("a", string(make([]byte, 100))); !errors.Is(err, ErrNameTooBig) {
		t.Fatalf("err = %v", err)
	}
}

// TestRenameCrashAtomic: a crash during rename must leave exactly the old
// or the new name resolving to the inode — never neither, never both.
func TestRenameCrashAtomic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		fs := newFS(t, nil)
		ino, _ := fs.CreateFile("old-name")
		// Drive the rename transaction by hand and crash before commit.
		slot, _, _ := fs.lookupSlot("old-name")
		de := fs.dentryOff(slot)
		tx := fs.beginTx()
		tx.logRange(de+deParent, DentrySize-deParent)
		tx.publish()
		rest := make([]byte, DentrySize-deParent)
		putU64(rest[0:8], RootIno)
		putU16(rest[8:10], 8)
		copy(rest[10:], "new-name")
		tx.modify(de+deParent, rest)
		// Crash (no commit).
		img := fs.Device().SampleCrash(rng, pmem.CrashOptions{})
		fs2, _, err := Mount(pmem.FromImage(img, nil))
		if err != nil {
			t.Fatal(err)
		}
		oldIno, oldErr := fs2.Lookup("old-name")
		newIno, newErr := fs2.Lookup("new-name")
		oldOK := oldErr == nil && oldIno == ino
		newOK := newErr == nil && newIno == ino
		if oldOK == newOK { // both or neither
			t.Fatalf("trial %d: rename not atomic (old=%v new=%v)", trial, oldOK, newOK)
		}
	}
}

// TestTruncateCrashConsistent: a crash during truncate must recover to
// either the full old state or the complete new state.
func TestTruncateCrashConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		fs := newFS(t, nil)
		fs.CreateFile("f")
		ino, _ := fs.Lookup("f")
		fs.WriteFile(ino, 0, make([]byte, 3*BlockSize))
		if err := fs.Truncate("f", 10); err != nil {
			t.Fatal(err)
		}
		img := fs.Device().SampleCrash(rng, pmem.CrashOptions{})
		fs2, _, err := Mount(pmem.FromImage(img, nil))
		if err != nil {
			t.Fatal(err)
		}
		size, err := fs2.Stat("f")
		if err != nil {
			t.Fatal(err)
		}
		_, blocks := fs2.Usage()
		switch size {
		case 10:
			// Block 0 still backs bytes [0,10).
			if blocks != 1 {
				t.Fatalf("trial %d: truncated size but %d blocks live, want 1", trial, blocks)
			}
		case 3 * BlockSize:
			if blocks != 3 {
				t.Fatalf("trial %d: old size but %d blocks live", trial, blocks)
			}
		default:
			t.Fatalf("trial %d: size = %d, want 10 or %d", trial, size, 3*BlockSize)
		}
	}
}
