package whisper

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pmtest/internal/core"
	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

const devSize = 1 << 24

type recorder struct{ ops *[]trace.Op }

func (r recorder) Record(op trace.Op, _ int) { *r.ops = append(*r.ops, op) }

// stores returns one fresh instance of each microbenchmark.
func stores(t testing.TB, sink trace.Sink, bugs BugSet) []Store {
	t.Helper()
	mk := func(f func(dev *pmem.Device) (Store, error)) Store {
		s, err := f(pmem.New(devSize, sink))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return []Store{
		mk(func(d *pmem.Device) (Store, error) { return NewCTree(d, bugs) }),
		mk(func(d *pmem.Device) (Store, error) { return NewBTree(d, bugs) }),
		mk(func(d *pmem.Device) (Store, error) { return NewRBTree(d, bugs) }),
		mk(func(d *pmem.Device) (Store, error) { return NewHashmapTX(d, 256, bugs) }),
		mk(func(d *pmem.Device) (Store, error) { return NewHashmapLL(d, 4096, 256, bugs) }),
	}
}

func TestInsertGetAllStores(t *testing.T) {
	for _, s := range stores(t, nil, nil) {
		t.Run(s.Name(), func(t *testing.T) {
			for i := uint64(0); i < 300; i++ {
				val := []byte(fmt.Sprintf("value-%d", i))
				if err := s.Insert(i*7, val); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			for i := uint64(0); i < 300; i++ {
				got, ok := s.Get(i * 7)
				if !ok || string(got) != fmt.Sprintf("value-%d", i) {
					t.Fatalf("Get(%d) = %q, %v", i*7, got, ok)
				}
			}
			if _, ok := s.Get(999999); ok {
				t.Fatal("found a key never inserted")
			}
		})
	}
}

func TestUpdateExistingKey(t *testing.T) {
	for _, s := range stores(t, nil, nil) {
		t.Run(s.Name(), func(t *testing.T) {
			s.Insert(42, []byte("old"))
			s.Insert(42, []byte("new-value"))
			got, ok := s.Get(42)
			if !ok || string(got) != "new-value" {
				t.Fatalf("Get = %q, %v", got, ok)
			}
		})
	}
}

func TestTreesStayOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := rng.Perm(500)
	devC, devB, devR := pmem.New(devSize, nil), pmem.New(devSize, nil), pmem.New(devSize, nil)
	ct, _ := NewCTree(devC, nil)
	bt, _ := NewBTree(devB, nil)
	rt, _ := NewRBTree(devR, nil)
	for _, k := range keys {
		v := []byte{byte(k)}
		ct.Insert(uint64(k), v)
		bt.Insert(uint64(k), v)
		rt.Insert(uint64(k), v)
	}
	check := func(name string, walk func(func(uint64))) {
		var got []uint64
		walk(func(k uint64) { got = append(got, k) })
		if len(got) != 500 {
			t.Fatalf("%s: %d keys, want 500", name, len(got))
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("%s: walk out of order", name)
		}
	}
	check("ctree", ct.Walk)
	check("btree", bt.Walk)
	check("rbtree", rt.Walk)
	if ok, why := rt.Validate(); !ok {
		t.Fatalf("rbtree invariant: %s", why)
	}
}

func TestRBTreeInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rt, err := NewRBTree(pmem.New(devSize, nil), nil)
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			rt.Insert(uint64(rng.Intn(100)), []byte{1})
			if ok, _ := rt.Validate(); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestCommittedInsertsSurviveCrash: after Insert returns, the key must be
// readable after recovery from any crash image.
func TestCommittedInsertsSurviveCrash(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	type opener func(dev *pmem.Device) (Store, error)
	cases := []struct {
		make func(dev *pmem.Device) (Store, error)
		open opener
	}{
		{func(d *pmem.Device) (Store, error) { return NewCTree(d, nil) },
			func(d *pmem.Device) (Store, error) { return OpenCTree(d) }},
		{func(d *pmem.Device) (Store, error) { return NewBTree(d, nil) },
			func(d *pmem.Device) (Store, error) { return OpenBTree(d) }},
		{func(d *pmem.Device) (Store, error) { return NewRBTree(d, nil) },
			func(d *pmem.Device) (Store, error) { return OpenRBTree(d) }},
		{func(d *pmem.Device) (Store, error) { return NewHashmapTX(d, 64, nil) },
			func(d *pmem.Device) (Store, error) { return OpenHashmapTX(d) }},
		{func(d *pmem.Device) (Store, error) { return NewHashmapLL(d, 1024, 64, nil) },
			func(d *pmem.Device) (Store, error) { return OpenHashmapLL(d) }},
	}
	for _, tc := range cases {
		dev := pmem.New(devSize, nil)
		s, err := tc.make(dev)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 40; i++ {
			s.Insert(i, []byte{byte(i), byte(i + 1)})
		}
		t.Run(s.Name(), func(t *testing.T) {
			for trial := 0; trial < 10; trial++ {
				img := dev.SampleCrash(rng, pmem.CrashOptions{})
				s2, err := tc.open(pmem.FromImage(img, nil))
				if err != nil {
					t.Fatal(err)
				}
				for i := uint64(0); i < 40; i++ {
					got, ok := s2.Get(i)
					if !ok || got[0] != byte(i) {
						t.Fatalf("trial %d: key %d lost or corrupt after crash", trial, i)
					}
				}
			}
		})
	}
}

// --- Engine integration: clean runs and bug detection -----------------------

// runChecked inserts a few keys with checkers on and returns the combined
// diagnostics over per-insert traces.
func runChecked(t *testing.T, s Store, sinkOps *[]trace.Op, n int) []core.Report {
	t.Helper()
	s.(Checkered).SetCheckers(true)
	var reports []core.Report
	for i := 0; i < n; i++ {
		*sinkOps = (*sinkOps)[:0]
		// i%20 forces the update path on later iterations, exercising
		// value-overwrite code.
		if err := s.Insert(uint64((i%20)*31), bytes.Repeat([]byte{byte(i)}, 128)); err != nil {
			t.Fatalf("insert: %v", err)
		}
		reports = append(reports, core.CheckTrace(core.X86{}, &trace.Trace{Ops: *sinkOps}))
	}
	return reports
}

func anyCode(reports []core.Report, c core.Code) bool {
	return core.CountCode(reports, c) > 0
}

func TestEngineCleanRunsAllStores(t *testing.T) {
	var ops []trace.Op
	for _, s := range stores(t, recorder{&ops}, nil) {
		t.Run(s.Name(), func(t *testing.T) {
			reports := runChecked(t, s, &ops, 30)
			for _, r := range reports {
				if !r.Clean() {
					t.Fatalf("clean %s flagged: %s", s.Name(), r.Summary())
				}
			}
		})
	}
}

func TestEngineDetectsWorkloadBugs(t *testing.T) {
	type tc struct {
		store string // index into stores(): 0..4
		bug   string
		code  core.Code
	}
	cases := []tc{
		{"ctree", BugCTreeSkipRootLog, core.CodeMissingBackup},
		{"ctree", BugCTreeSkipParentLog, core.CodeMissingBackup},
		{"ctree", BugCTreeSkipValueLog, core.CodeMissingBackup},
		{"ctree", BugCTreeDoubleRootLog, core.CodeDuplicateLog},
		{"btree", BugBTreeSkipInsertLog, core.CodeMissingBackup},
		{"btree", BugBTreeSkipRootLog, core.CodeMissingBackup},
		{"btree", BugBTreeSkipSplitLog, core.CodeMissingBackup},
		{"btree", BugBTreeSkipParentLog, core.CodeMissingBackup},
		{"btree", BugBTreeDoubleInsertLog, core.CodeDuplicateLog},
		{"rbtree", BugRBTreeSkipNodeLog, core.CodeMissingBackup},
		{"rbtree", BugRBTreeSkipRootLog, core.CodeMissingBackup},
		{"rbtree", BugRBTreeSkipUncleLog, core.CodeMissingBackup},
		{"rbtree", BugRBTreeDoubleNodeLog, core.CodeDuplicateLog},
		{"hashmap-tx", BugHMTxSkipBucketLog, core.CodeMissingBackup},
		{"hashmap-tx", BugHMTxSkipValueLog, core.CodeMissingBackup},
		{"hashmap-tx", BugHMTxDoubleBucketLog, core.CodeDuplicateLog},
		{"hashmap-ll", BugHMLLSkipBackupBarrier, core.CodeOrderViolation},
		{"hashmap-ll", BugHMLLSkipUpdateFlush, core.CodeNotPersisted},
		{"hashmap-ll", BugHMLLSkipUpdateFence, core.CodeOrderViolation},
		{"hashmap-ll", BugHMLLDoubleSlotFlush, core.CodeDuplicateWriteback},
		{"hashmap-ll", BugHMLLFlushWrongSlot, core.CodeUnnecessaryWriteback},
		{"hashmap-ll", BugHMLLValidBeforeValue, core.CodeOrderViolation},
	}
	idx := map[string]int{"ctree": 0, "btree": 1, "rbtree": 2, "hashmap-tx": 3, "hashmap-ll": 4}
	for _, c := range cases {
		t.Run(c.bug, func(t *testing.T) {
			var ops []trace.Op
			bugs := BugSet{c.bug: true}
			s := stores(t, recorder{&ops}, bugs)[idx[c.store]]
			reports := runChecked(t, s, &ops, 60)
			if !anyCode(reports, c.code) {
				var all string
				for _, r := range reports {
					if !r.Clean() {
						all += r.Summary()
					}
				}
				t.Fatalf("bug %s not detected as %s; findings: %s", c.bug, c.code, all)
			}
		})
	}
}

// TestBugsAreRealGroundTruth: the Fig. 1a missing backup barrier is a
// real crash-consistency bug — with the barrier omitted, a crash after
// the valid flag persists but before the backup content does makes
// recovery restore garbage. The checker's FAIL verdict is not crying
// wolf.
func TestBugsAreRealGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	broken := false
	for trial := 0; trial < 200 && !broken; trial++ {
		dev := pmem.New(1<<22, nil)
		// Values large enough that the backup content spans cache lines
		// beyond the one holding the valid flag — the window Fig. 1a's
		// missing barrier opens.
		h, err := NewHashmapLL(dev, 64, 256, nil)
		if err != nil {
			t.Fatal(err)
		}
		h.Insert(1, bytes.Repeat([]byte{0xAA}, 128))
		// Locate key 1's slot.
		idx := mix(1) % h.nSlots
		slot := h.slotOff(idx)
		if dev.Load64(slot+slotKey) != 1 {
			t.Fatal("test assumes key 1 lands on its home slot")
		}
		// Re-run the BUGGY update sequence by hand and crash mid-window:
		// backup content stored but NOT persisted, valid flag persisted,
		// in-place update started.
		bk := h.backupOff()
		old := dev.LoadBytes(slot+slotVLen, 8+h.valCap)
		dev.Store(bk+slotVLen, old)
		dev.Store64(bk+slotKey, idx)
		// (missing PersistBarrier here — the Fig. 1a bug)
		dev.Store64(bk+slotValid, 1)
		dev.PersistBarrier(bk+slotValid, 8)
		dev.Store64(slot+slotVLen, 128)
		dev.Store(slot+slotData, bytes.Repeat([]byte{0xBB}, 128))
		img := dev.SampleCrash(rng, pmem.CrashOptions{})
		h2, err := OpenHashmapLL(pmem.FromImage(img, nil))
		if err != nil {
			t.Fatal(err)
		}
		got, ok := h2.Get(1)
		if !ok || len(got) == 0 {
			broken = true
			continue
		}
		allA, allB := true, true
		for _, b := range got {
			if b != 0xAA {
				allA = false
			}
			if b != 0xBB {
				allB = false
			}
		}
		if !allA && !allB {
			broken = true
		}
	}
	if !broken {
		t.Fatal("missing backup barrier never broke recovery — ground truth lost")
	}
}
