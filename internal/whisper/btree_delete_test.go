package whisper

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pmtest/internal/core"
	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

func TestBTreeDeleteBasic(t *testing.T) {
	b, _ := NewBTree(pmem.New(devSize, nil), nil)
	for i := uint64(0); i < 20; i++ {
		b.Insert(i, []byte{byte(i)})
	}
	ok, err := b.Delete(7)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, found := b.Get(7); found {
		t.Fatal("deleted key present")
	}
	if valid, why := b.Validate(); !valid {
		t.Fatal(why)
	}
	if b.Len() != 19 {
		t.Fatalf("Len = %d", b.Len())
	}
	if ok, _ := b.Delete(7); ok {
		t.Fatal("double delete succeeded")
	}
}

func TestBTreeDeleteAllOrders(t *testing.T) {
	for name, order := range map[string]func(n int) []int{
		"ascending": func(n int) []int {
			v := make([]int, n)
			for i := range v {
				v[i] = i
			}
			return v
		},
		"descending": func(n int) []int {
			v := make([]int, n)
			for i := range v {
				v[i] = n - 1 - i
			}
			return v
		},
		"random": func(n int) []int { return rand.New(rand.NewSource(5)).Perm(n) },
	} {
		t.Run(name, func(t *testing.T) {
			const n = 200
			b, _ := NewBTree(pmem.New(devSize, nil), nil)
			for i := uint64(0); i < n; i++ {
				b.Insert(i, []byte{byte(i)})
			}
			for _, k := range order(n) {
				ok, err := b.Delete(uint64(k))
				if err != nil || !ok {
					t.Fatalf("Delete(%d) = %v, %v", k, ok, err)
				}
				if valid, why := b.Validate(); !valid {
					t.Fatalf("after Delete(%d): %s", k, why)
				}
			}
			if b.Len() != 0 {
				t.Fatalf("Len = %d after deleting all", b.Len())
			}
			// The tree is reusable after emptying.
			b.Insert(42, []byte{42})
			if v, ok := b.Get(42); !ok || v[0] != 42 {
				t.Fatal("reuse after emptying failed")
			}
		})
	}
}

func TestQuickBTreeInsertDelete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := pmem.New(devSize, nil)
		b, err := NewBTree(dev, nil)
		if err != nil {
			return false
		}
		model := map[uint64]byte{}
		for i := 0; i < 200; i++ {
			k := uint64(rng.Intn(60))
			if rng.Intn(3) == 0 {
				ok, err := b.Delete(k)
				if err != nil {
					return false
				}
				if _, in := model[k]; in != ok {
					return false
				}
				delete(model, k)
			} else {
				v := byte(rng.Intn(256))
				if err := b.Insert(k, []byte{v}); err != nil {
					return false
				}
				model[k] = v
			}
			if valid, _ := b.Validate(); !valid {
				return false
			}
		}
		if b.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := b.Get(k)
			if !ok || got[0] != v {
				return false
			}
		}
		var keys []uint64
		b.Walk(func(k uint64) { keys = append(keys, k) })
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			return false
		}
		// Durable reopen.
		b2, err := OpenBTree(pmem.FromImage(dev.Image(), nil))
		if err != nil {
			return false
		}
		for k, v := range model {
			got, ok := b2.Get(k)
			if !ok || got[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestBTreeDeleteCheckedClean: borrow/merge paths under full checker
// instrumentation produce no findings.
func TestBTreeDeleteCheckedClean(t *testing.T) {
	var ops []trace.Op
	b, _ := NewBTree(pmem.New(devSize, recorder{&ops}), nil)
	b.SetCheckers(true)
	for i := uint64(0); i < 100; i++ {
		b.Insert(i, []byte{byte(i)})
	}
	for i := uint64(0); i < 100; i += 2 {
		ops = ops[:0]
		if _, err := b.Delete(i); err != nil {
			t.Fatal(err)
		}
		r := core.CheckTrace(core.X86{}, &trace.Trace{Ops: ops})
		if !r.Clean() {
			t.Fatalf("clean delete flagged: %s", r.Summary())
		}
	}
	if valid, why := b.Validate(); !valid {
		t.Fatal(why)
	}
}

// TestBTreeRotateDoubleLogBug: the paper's Bug 3 in its authentic home —
// the rotate path of remove logs a node already snapshotted, flagged as
// duplicate-log.
func TestBTreeRotateDoubleLogBug(t *testing.T) {
	var ops []trace.Op
	b, _ := NewBTree(pmem.New(devSize, recorder{&ops}),
		BugSet{BugBTreeDoubleInsertLog: true})
	b.SetCheckers(true)
	// Build enough structure that deletions trigger rotate-left borrows.
	for i := uint64(0); i < 120; i++ {
		b.Insert(i, []byte{byte(i)})
	}
	found := false
	for i := uint64(0); i < 120 && !found; i++ {
		ops = ops[:0]
		if _, err := b.Delete(i); err != nil {
			t.Fatal(err)
		}
		r := core.CheckTrace(core.X86{}, &trace.Trace{Ops: ops})
		if r.HasCode(core.CodeDuplicateLog) {
			found = true
		}
	}
	if !found {
		t.Fatal("rotate-path duplicate TX_ADD never flagged")
	}
}

// TestBTreeDeleteCrashConsistent: committed deletes survive crashes with
// invariants intact.
func TestBTreeDeleteCrashConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	dev := pmem.New(devSize, nil)
	b, _ := NewBTree(dev, nil)
	for i := uint64(0); i < 60; i++ {
		b.Insert(i, []byte{byte(i)})
	}
	for i := uint64(0); i < 30; i++ {
		if _, err := b.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 10; trial++ {
		img := dev.SampleCrash(rng, pmem.CrashOptions{})
		b2, err := OpenBTree(pmem.FromImage(img, nil))
		if err != nil {
			t.Fatal(err)
		}
		if valid, why := b2.Validate(); !valid {
			t.Fatalf("trial %d: %s", trial, why)
		}
		for i := uint64(0); i < 30; i++ {
			if _, found := b2.Get(i); found {
				t.Fatalf("trial %d: deleted key %d resurrected", trial, i)
			}
		}
		for i := uint64(30); i < 60; i++ {
			if _, found := b2.Get(i); !found {
				t.Fatalf("trial %d: surviving key %d lost", trial, i)
			}
		}
	}
}
