// Package whisper reimplements the workloads of the WHISPER benchmark
// suite that the paper evaluates PMTest with (§6): five PMDK-style
// single-threaded microbenchmarks (C-Tree, B-Tree, RB-Tree, HashMap with
// and without transactions), plus analogs of the real workloads —
// Memcached on Mnemosyne, Redis on pmdk, and client generators (memslap,
// YCSB, redis LRU, filebench, OLTP) driving them and the PMFS substrate.
//
// Each insertion runs as one failure-atomic transaction whose value size
// is the paper's "transaction size" parameter (Fig. 10 sweeps it from 64
// to 4096 bytes).
package whisper

import (
	"fmt"

	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

// BugSet activates named injection points inside the workloads; the bug
// catalog (internal/bugdb) maps Table 5 rows onto these names. A nil
// BugSet is a clean run.
type BugSet map[string]bool

// On reports whether the named bug is active.
func (b BugSet) On(name string) bool { return b != nil && b[name] }

// Store is the common interface of the five microbenchmarks: keyed
// insertion of opaque values plus lookup, with every insert
// crash-consistent.
type Store interface {
	// Name is the benchmark's WHISPER name.
	Name() string
	// Insert adds or updates key with val, failure-atomically.
	Insert(key uint64, val []byte) error
	// Get returns the value stored for key.
	Get(key uint64) ([]byte, bool)
	// Device returns the backing PM device (for crash/recovery tests).
	Device() *pmem.Device
}

// Checkered is implemented by stores that support the paper's checker
// instrumentation: transaction checkers for the tx-based stores
// (TX_CHECKER_START/END around every insert) and low-level checkers for
// the raw-primitive HashMap.
type Checkered interface {
	// SetCheckers enables or disables checker emission per insert.
	SetCheckers(on bool)
}

// value layout used by all pmdk-based stores: values live in their own
// allocation; nodes reference {off, len}.

// txCheckerSink wraps inserts with TX_CHECKER_START/END ops. The stores
// emit these through the device sink so checker placement matches the
// paper: two checkers per program (§6.3).
func txCheckerStart(dev *pmem.Device) {
	dev.RecordOp(trace.Op{Kind: trace.KindTxCheckerStart}, 1)
}

func txCheckerEnd(dev *pmem.Device) {
	dev.RecordOp(trace.Op{Kind: trace.KindTxCheckerEnd}, 1)
}

// errBug annotates impossible conditions caused by an active bug switch.
func errBug(name string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("workload(bug=%s): %w", name, err)
}
