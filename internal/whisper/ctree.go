package whisper

import (
	"pmtest/internal/pmdk"
	"pmtest/internal/pmem"
)

// CTree is the WHISPER/PMDK crit-tree microbenchmark analog: an unbalanced
// binary search tree where every insert is one PMDK transaction.
//
// Node layout (40 bytes, line-aligned by the allocator):
//
//	0  key
//	8  value offset
//	16 value length
//	24 left child offset
//	32 right child offset
type CTree struct {
	pool  *pmdk.Pool
	root  uint64 // root object: one 8-byte pointer to the top node
	bugs  BugSet
	check bool
}

const (
	ctKey   = 0
	ctVal   = 8
	ctVLen  = 16
	ctLeft  = 24
	ctRight = 32
	ctSize  = 40
)

// Named injection points (Table 5 Backup/Completion rows for C-Tree).
const (
	BugCTreeSkipRootLog   = "ctree-skip-root-log"   // root pointer updated without TX_ADD
	BugCTreeSkipParentLog = "ctree-skip-parent-log" // parent child-pointer updated without TX_ADD
	BugCTreeSkipValueLog  = "ctree-skip-value-log"  // value overwrite without TX_ADD
	BugCTreeDoubleRootLog = "ctree-double-root-log" // root pointer logged twice
)

// NewCTree creates a C-Tree in a fresh pool on dev.
func NewCTree(dev *pmem.Device, bugs BugSet) (*CTree, error) {
	pool, err := pmdk.Create(dev, 0)
	if err != nil {
		return nil, err
	}
	root, err := pool.Root(8)
	if err != nil {
		return nil, err
	}
	return &CTree{pool: pool, root: root, bugs: bugs}, nil
}

// OpenCTree reattaches to an existing pool (after crash/recovery).
func OpenCTree(dev *pmem.Device) (*CTree, error) {
	pool, _, err := pmdk.Open(dev)
	if err != nil {
		return nil, err
	}
	root, err := pool.Root(8)
	if err != nil {
		return nil, err
	}
	return &CTree{pool: pool, root: root}, nil
}

// Name implements Store.
func (c *CTree) Name() string { return "C-Tree" }

// Device implements Store.
func (c *CTree) Device() *pmem.Device { return c.pool.Device() }

// Pool exposes the backing pool (bug catalog installs library switches).
func (c *CTree) Pool() *pmdk.Pool { return c.pool }

// SetCheckers implements Checkered.
func (c *CTree) SetCheckers(on bool) { c.check = on }

// Insert adds key→val in one transaction.
func (c *CTree) Insert(key uint64, val []byte) error {
	if c.check {
		txCheckerStart(c.Device())
		defer txCheckerEnd(c.Device())
	}
	return c.pool.Tx(func(tx *pmdk.Tx) error {
		// Find the insertion point (reads need no protection).
		parent := uint64(0)
		var parentField uint64
		cur := c.pool.Device().Load64(c.root)
		for cur != 0 {
			k := c.pool.Device().Load64(cur + ctKey)
			if k == key {
				return c.updateValue(tx, cur, val)
			}
			parent = cur
			if key < k {
				parentField = cur + ctLeft
				cur = c.pool.Device().Load64(cur + ctLeft)
			} else {
				parentField = cur + ctRight
				cur = c.pool.Device().Load64(cur + ctRight)
			}
		}
		node, err := c.newNode(tx, key, val)
		if err != nil {
			return err
		}
		if parent == 0 {
			// Link from the root pointer.
			if !c.bugs.On(BugCTreeSkipRootLog) {
				tx.Add(c.root, 8)
			}
			if c.bugs.On(BugCTreeDoubleRootLog) {
				tx.Add(c.root, 8)
				tx.Add(c.root, 8)
			}
			tx.Set64(c.root, node)
			return nil
		}
		if !c.bugs.On(BugCTreeSkipParentLog) {
			tx.Add(parentField, 8)
		}
		tx.Set64(parentField, node)
		return nil
	})
}

func (c *CTree) newNode(tx *pmdk.Tx, key uint64, val []byte) (uint64, error) {
	vOff, err := tx.Alloc(uint64(len(val)))
	if err != nil {
		return 0, err
	}
	tx.Set(vOff, val)
	node, err := tx.Alloc(ctSize)
	if err != nil {
		return 0, err
	}
	tx.Set64(node+ctKey, key)
	tx.Set64(node+ctVal, vOff)
	tx.Set64(node+ctVLen, uint64(len(val)))
	tx.Set64(node+ctLeft, 0)
	tx.Set64(node+ctRight, 0)
	return node, nil
}

func (c *CTree) updateValue(tx *pmdk.Tx, node uint64, val []byte) error {
	vOff, err := tx.Alloc(uint64(len(val)))
	if err != nil {
		return err
	}
	tx.Set(vOff, val)
	if !c.bugs.On(BugCTreeSkipValueLog) {
		tx.Add(node+ctVal, 16)
	}
	oldOff := c.pool.Device().Load64(node + ctVal)
	oldLen := c.pool.Device().Load64(node + ctVLen)
	tx.Set64(node+ctVal, vOff)
	tx.Set64(node+ctVLen, uint64(len(val)))
	c.pool.Free(oldOff, oldLen)
	return nil
}

// Get implements Store.
func (c *CTree) Get(key uint64) ([]byte, bool) {
	dev := c.pool.Device()
	cur := dev.Load64(c.root)
	for cur != 0 {
		k := dev.Load64(cur + ctKey)
		switch {
		case k == key:
			return dev.LoadBytes(dev.Load64(cur+ctVal), dev.Load64(cur+ctVLen)), true
		case key < k:
			cur = dev.Load64(cur + ctLeft)
		default:
			cur = dev.Load64(cur + ctRight)
		}
	}
	return nil, false
}

// Walk visits keys in order (consistency checks in tests).
func (c *CTree) Walk(visit func(key uint64)) {
	var rec func(n uint64)
	dev := c.pool.Device()
	rec = func(n uint64) {
		if n == 0 {
			return
		}
		rec(dev.Load64(n + ctLeft))
		visit(dev.Load64(n + ctKey))
		rec(dev.Load64(n + ctRight))
	}
	rec(dev.Load64(c.root))
}
