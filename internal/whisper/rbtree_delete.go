package whisper

import (
	"pmtest/internal/pmdk"
)

// Delete removes key from the RB-tree in one transaction, returning
// false when absent. Standard red-black deletion (CLRS) with parent
// pointers; 0 is the nil sentinel, and the fixup treats nil children as
// black. Every modified node is snapshotted through r.add, so deletion
// stresses the undo machinery harder than any insert path (multi-node
// recolouring chains plus up to three rotations).
func (r *RBTree) Delete(key uint64) (bool, error) {
	if r.check {
		txCheckerStart(r.Device())
		defer txCheckerEnd(r.Device())
	}
	r.addedTx = map[uint64]bool{}
	deleted := false
	err := r.pool.Tx(func(tx *pmdk.Tx) error {
		dev := r.dev()
		z := dev.Load64(r.root)
		for z != 0 && r.get(z, rbKey) != key {
			if key < r.get(z, rbKey) {
				z = r.get(z, rbLeft)
			} else {
				z = r.get(z, rbRight)
			}
		}
		if z == 0 {
			return nil
		}
		deleted = true

		// y is the node physically removed; x is the child that replaces
		// it (possibly 0, with xParent tracking its would-be parent).
		y := z
		yOrigColor := r.get(y, rbColor)
		var x, xParent uint64
		switch {
		case r.get(z, rbLeft) == 0:
			x = r.get(z, rbRight)
			xParent = r.get(z, rbParent)
			r.transplant(tx, z, x)
		case r.get(z, rbRight) == 0:
			x = r.get(z, rbLeft)
			xParent = r.get(z, rbParent)
			r.transplant(tx, z, x)
		default:
			// y = minimum of z's right subtree.
			y = r.get(z, rbRight)
			for l := r.get(y, rbLeft); l != 0; l = r.get(y, rbLeft) {
				y = l
			}
			yOrigColor = r.get(y, rbColor)
			x = r.get(y, rbRight)
			if r.get(y, rbParent) == z {
				xParent = y
				if x != 0 {
					r.set(tx, x, rbParent, y)
				}
			} else {
				xParent = r.get(y, rbParent)
				r.transplant(tx, y, x)
				r.set(tx, y, rbRight, r.get(z, rbRight))
				r.set(tx, r.get(y, rbRight), rbParent, y)
			}
			r.transplant(tx, z, y)
			r.set(tx, y, rbLeft, r.get(z, rbLeft))
			r.set(tx, r.get(y, rbLeft), rbParent, y)
			r.set(tx, y, rbColor, r.get(z, rbColor))
		}
		// Release z's storage.
		r.pool.Free(r.get(z, rbVal), r.get(z, rbVLen))
		r.pool.Free(z, rbSize)

		if yOrigColor == black {
			r.deleteFixup(tx, x, xParent)
		}
		return nil
	})
	return deleted, err
}

// transplant replaces the subtree rooted at u with the one rooted at v.
func (r *RBTree) transplant(tx *pmdk.Tx, u, v uint64) {
	up := r.get(u, rbParent)
	if up == 0 {
		r.setRoot(tx, v)
	} else if u == r.get(up, rbLeft) {
		r.set(tx, up, rbLeft, v)
	} else {
		r.set(tx, up, rbRight, v)
	}
	if v != 0 {
		r.set(tx, v, rbParent, up)
	}
}

// color treats the nil sentinel as black.
func (r *RBTree) color(n uint64) uint64 {
	if n == 0 {
		return black
	}
	return r.get(n, rbColor)
}

// deleteFixup restores the red-black invariants after removing a black
// node; x (possibly 0) sits where the doubled black is, under xParent.
func (r *RBTree) deleteFixup(tx *pmdk.Tx, x, xParent uint64) {
	for x != r.dev().Load64(r.root) && r.color(x) == black {
		if xParent == 0 {
			break
		}
		if x == r.get(xParent, rbLeft) {
			w := r.get(xParent, rbRight)
			if r.color(w) == red {
				r.set(tx, w, rbColor, black)
				r.set(tx, xParent, rbColor, red)
				r.rotateLeft(tx, xParent)
				w = r.get(xParent, rbRight)
			}
			if r.color(r.get(w, rbLeft)) == black && r.color(r.get(w, rbRight)) == black {
				r.set(tx, w, rbColor, red)
				x = xParent
				xParent = r.get(x, rbParent)
				continue
			}
			if r.color(r.get(w, rbRight)) == black {
				if wl := r.get(w, rbLeft); wl != 0 {
					r.set(tx, wl, rbColor, black)
				}
				r.set(tx, w, rbColor, red)
				r.rotateRight(tx, w)
				w = r.get(xParent, rbRight)
			}
			r.set(tx, w, rbColor, r.color(xParent))
			r.set(tx, xParent, rbColor, black)
			if wr := r.get(w, rbRight); wr != 0 {
				r.set(tx, wr, rbColor, black)
			}
			r.rotateLeft(tx, xParent)
			x = r.dev().Load64(r.root)
			xParent = 0
			continue
		}
		// Mirror image.
		w := r.get(xParent, rbLeft)
		if r.color(w) == red {
			r.set(tx, w, rbColor, black)
			r.set(tx, xParent, rbColor, red)
			r.rotateRight(tx, xParent)
			w = r.get(xParent, rbLeft)
		}
		if r.color(r.get(w, rbRight)) == black && r.color(r.get(w, rbLeft)) == black {
			r.set(tx, w, rbColor, red)
			x = xParent
			xParent = r.get(x, rbParent)
			continue
		}
		if r.color(r.get(w, rbLeft)) == black {
			if wr := r.get(w, rbRight); wr != 0 {
				r.set(tx, wr, rbColor, black)
			}
			r.set(tx, w, rbColor, red)
			r.rotateLeft(tx, w)
			w = r.get(xParent, rbLeft)
		}
		r.set(tx, w, rbColor, r.color(xParent))
		r.set(tx, xParent, rbColor, black)
		if wl := r.get(w, rbLeft); wl != 0 {
			r.set(tx, wl, rbColor, black)
		}
		r.rotateRight(tx, xParent)
		x = r.dev().Load64(r.root)
		xParent = 0
	}
	if x != 0 {
		r.set(tx, x, rbColor, black)
	}
}

// Len counts the keys in the tree (test helper).
func (r *RBTree) Len() int {
	n := 0
	r.Walk(func(uint64) { n++ })
	return n
}
