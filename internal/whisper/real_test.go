package whisper

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"pmtest/internal/core"
	"pmtest/internal/pmem"
	"pmtest/internal/pmfs"
	"pmtest/internal/trace"
)

func newMemcached(t testing.TB, shards int, sinks []trace.Sink) *Memcached {
	t.Helper()
	var devs []*pmem.Device
	for i := 0; i < shards; i++ {
		var sink trace.Sink
		if sinks != nil {
			sink = sinks[i]
		}
		devs = append(devs, pmem.New(MemcachedShardSpace(2048, 256), sink))
	}
	m, err := NewMemcached(devs, 2048, 256)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMemcachedSetGet(t *testing.T) {
	m := newMemcached(t, 2, nil)
	for i := uint64(0); i < 200; i++ {
		if err := m.Set(i, []byte{byte(i), byte(i >> 1)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 200; i++ {
		v, ok := m.Get(i)
		if !ok || v[0] != byte(i) {
			t.Fatalf("Get(%d) = %v, %v", i, v, ok)
		}
	}
	if _, ok := m.Get(12345); ok {
		t.Fatal("phantom key")
	}
}

func TestMemcachedConcurrentClients(t *testing.T) {
	m := newMemcached(t, 4, nil)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ops := MemslapOps(2000, 500, 64, int64(c))
			if err := RunKV(m.Set, m.Get, ops, int64(c)); err != nil {
				t.Error(err)
			}
		}(c)
	}
	wg.Wait()
}

func TestMemcachedShardingStable(t *testing.T) {
	m := newMemcached(t, 4, nil)
	for i := uint64(0); i < 100; i++ {
		if m.ShardIndex(i) != m.ShardIndex(i) {
			t.Fatal("unstable sharding")
		}
		if m.ShardIndex(i) < 0 || m.ShardIndex(i) >= 4 {
			t.Fatal("shard out of range")
		}
	}
}

func TestMemcachedCheckedSectionsClean(t *testing.T) {
	// One tracker per shard, one trace per op: the paper's §6.2.3 setup.
	var ops []trace.Op
	rec := recorder{&ops}
	m := newMemcached(t, 1, []trace.Sink{rec})
	m.SetCheckers(true)
	ops = ops[:0] // drop region-creation traffic
	var reports []core.Report
	m.SetSectionHook(0, func() {
		if len(ops) > 0 {
			reports = append(reports, core.CheckTrace(core.X86{}, &trace.Trace{Ops: ops}))
			ops = ops[:0]
		}
	})
	for i := uint64(0); i < 50; i++ {
		if err := m.Set(i, bytes.Repeat([]byte{1}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if len(reports) != 50 {
		t.Fatalf("sections = %d, want 50", len(reports))
	}
	for _, r := range reports {
		if !r.Clean() {
			t.Fatalf("clean memcached flagged: %s", r.Summary())
		}
	}
}

func TestRedisLRUEviction(t *testing.T) {
	r, err := NewRedis(pmem.New(1<<24, nil), 256, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 300; i++ {
		if err := r.Set(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d, want 100 (capacity)", r.Len())
	}
	// Recent keys present, oldest evicted.
	if _, ok := r.Get(299); !ok {
		t.Fatal("most recent key evicted")
	}
	if _, ok := r.Get(0); ok {
		t.Fatal("oldest key survived eviction beyond capacity")
	}
}

func TestRedisLRUWorkload(t *testing.T) {
	r, err := NewRedis(pmem.New(1<<25, nil), 1024, 500)
	if err != nil {
		t.Fatal(err)
	}
	ops := LRUOps(5000, 2000, 64, 7)
	if err := RunKV(r.Set, r.Get, ops, 7); err != nil {
		t.Fatal(err)
	}
	if r.Len() > 500 {
		t.Fatalf("capacity exceeded: %d", r.Len())
	}
}

func TestFilebenchOverPMFS(t *testing.T) {
	dev := pmem.New(1<<24, nil)
	fs, err := pmfs.Mkfs(dev, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	ops := FilebenchOps(2000, 16, 2048, 3)
	if err := RunFS(fs, ops, 3); err != nil {
		t.Fatal(err)
	}
	// The FS survives remount from the durable image.
	if _, _, err := pmfs.Mount(pmem.FromImage(dev.Image(), nil)); err != nil {
		t.Fatal(err)
	}
}

func TestOLTPOverPMFS(t *testing.T) {
	dev := pmem.New(1<<24, nil)
	fs, err := pmfs.Mkfs(dev, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	ops := OLTPOps(1500, 4, 512, 5)
	if err := RunFS(fs, ops, 5); err != nil {
		t.Fatal(err)
	}
}

func TestClientGeneratorShapes(t *testing.T) {
	ms := MemslapOps(10000, 1000, 64, 1)
	sets := 0
	for _, op := range ms {
		if op.IsSet {
			sets++
		}
	}
	if sets < 300 || sets > 800 {
		t.Fatalf("memslap sets = %d/10000, want ~5%%", sets)
	}
	yc := YCSBOps(10000, 1000, 64, 1)
	sets = 0
	for _, op := range yc {
		if op.IsSet {
			sets++
		}
	}
	if sets < 4500 || sets > 5500 {
		t.Fatalf("ycsb sets = %d/10000, want ~50%%", sets)
	}
	// Zipf skew: the most popular key should dominate.
	counts := map[uint64]int{}
	for _, op := range yc {
		counts[op.Key]++
	}
	if counts[0] < 500 {
		t.Fatalf("ycsb zipf head count = %d, want heavy skew", counts[0])
	}
}

// TestMemcachedCrashRecovery: committed sets survive any crash and
// reopen through OpenMemcached.
func TestMemcachedCrashRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	devs := []*pmem.Device{
		pmem.New(MemcachedShardSpace(512, 64), nil),
		pmem.New(MemcachedShardSpace(512, 64), nil),
	}
	m, err := NewMemcached(devs, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 60; i++ {
		if err := m.Set(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	m.Delete(3)
	for trial := 0; trial < 10; trial++ {
		var imgs []*pmem.Device
		for _, d := range devs {
			imgs = append(imgs, pmem.FromImage(d.SampleCrash(rng, pmem.CrashOptions{}), nil))
		}
		m2, err := OpenMemcached(imgs, 512, 64)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 60; i++ {
			v, ok := m2.Get(i)
			if i == 3 {
				if ok {
					t.Fatalf("trial %d: deleted key resurrected", trial)
				}
				continue
			}
			if !ok || v[0] != byte(i) {
				t.Fatalf("trial %d: key %d lost", trial, i)
			}
		}
	}
}

// TestRedisReopen: the persistent map survives a restart; LRU state
// restarts cold but all keys remain evictable.
func TestRedisReopen(t *testing.T) {
	dev := pmem.New(1<<24, nil)
	r, err := NewRedis(dev, 128, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		r.Set(i, []byte{byte(i)})
	}
	r2, err := OpenRedis(pmem.FromImage(dev.Image(), nil), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 50 {
		t.Fatalf("Len after reopen = %d", r2.Len())
	}
	for i := uint64(0); i < 50; i++ {
		if v, ok := r2.Get(i); !ok || v[0] != byte(i) {
			t.Fatalf("key %d lost across reopen", i)
		}
	}
	// Eviction still works against recovered keys.
	for i := uint64(1000); i < 2000; i++ {
		if err := r2.Set(i, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if r2.Len() != 1000 {
		t.Fatalf("capacity not enforced after reopen: %d", r2.Len())
	}
}
