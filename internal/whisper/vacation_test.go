package whisper

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pmtest/internal/core"
	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

func newVacation(t testing.TB, sink trace.Sink) *Vacation {
	t.Helper()
	v, err := NewVacation(pmem.New(devSize, sink), 32, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestVacationReserveAndBill(t *testing.T) {
	v := newVacation(t, nil)
	if err := v.MakeReservation(3, ResCar, 5); err != nil {
		t.Fatal(err)
	}
	if err := v.MakeReservation(3, ResFlight, 7); err != nil {
		t.Fatal(err)
	}
	if got := v.Reserved(ResCar, 5); got != 1 {
		t.Fatalf("Reserved = %d", got)
	}
	total, count := v.CustomerBill(3)
	if count != 2 || total == 0 {
		t.Fatalf("bill = %d (%d items)", total, count)
	}
}

func TestVacationSoldOut(t *testing.T) {
	v := newVacation(t, nil) // capacity 4
	for c := uint64(0); c < 4; c++ {
		if err := v.MakeReservation(c, ResRoom, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.MakeReservation(5, ResRoom, 0); !errors.Is(err, ErrSoldOut) {
		t.Fatalf("err = %v, want ErrSoldOut", err)
	}
	// A sold-out attempt must not leak partial state.
	if v.Reserved(ResRoom, 0) != 4 {
		t.Fatal("failed reservation mutated the count")
	}
	if _, n := v.CustomerBill(5); n != 0 {
		t.Fatal("failed reservation linked a node")
	}
}

func TestVacationCancel(t *testing.T) {
	v := newVacation(t, nil)
	v.MakeReservation(1, ResCar, 2)
	v.MakeReservation(1, ResCar, 3)
	if err := v.CancelReservation(1, ResCar, 2); err != nil {
		t.Fatal(err)
	}
	if v.Reserved(ResCar, 2) != 0 {
		t.Fatal("cancel did not release the unit")
	}
	if _, n := v.CustomerBill(1); n != 1 {
		t.Fatalf("bill items = %d, want 1", n)
	}
	if err := v.CancelReservation(1, ResCar, 2); !errors.Is(err, ErrNoSuchRes) {
		t.Fatalf("double cancel: %v", err)
	}
}

func TestVacationErrors(t *testing.T) {
	v := newVacation(t, nil)
	if err := v.MakeReservation(99, ResCar, 0); !errors.Is(err, ErrBadID) {
		t.Fatalf("bad customer: %v", err)
	}
	if err := v.MakeReservation(0, ResCar, 99); !errors.Is(err, ErrBadID) {
		t.Fatalf("bad id: %v", err)
	}
	if err := v.MakeReservation(0, 9, 0); !errors.Is(err, ErrBadResKind) {
		t.Fatalf("bad kind: %v", err)
	}
}

// TestQuickVacationConservation: the global invariant — total reserved
// units equal total reservation-list entries — holds under random
// reserve/cancel mixes, in the volatile view AND after reopening from
// the durable image.
func TestQuickVacationConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := pmem.New(devSize, nil)
		v, err := NewVacation(dev, 16, 8, 3)
		if err != nil {
			return false
		}
		type res struct {
			cust uint64
			kind int
			id   uint64
		}
		var live []res
		for i := 0; i < 80; i++ {
			if rng.Intn(3) != 0 || len(live) == 0 {
				r := res{uint64(rng.Intn(8)), rng.Intn(3), uint64(rng.Intn(16))}
				err := v.MakeReservation(r.cust, r.kind, r.id)
				if err == nil {
					live = append(live, r)
				} else if !errors.Is(err, ErrSoldOut) {
					return false
				}
			} else {
				i := rng.Intn(len(live))
				r := live[i]
				if err := v.CancelReservation(r.cust, r.kind, r.id); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		if v.TotalReserved() != uint64(len(live)) || v.CustomerCount() != uint64(len(live)) {
			return false
		}
		// Durable view.
		v2, err := OpenVacation(pmem.FromImage(dev.Image(), nil), 16, 8)
		if err != nil {
			return false
		}
		return v2.TotalReserved() == uint64(len(live)) &&
			v2.CustomerCount() == uint64(len(live))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestVacationCheckedClean: multi-table transactions are clean under
// full instrumentation.
func TestVacationCheckedClean(t *testing.T) {
	var ops []trace.Op
	v := newVacation(t, recorder{&ops})
	v.SetCheckers(true)
	for i := uint64(0); i < 20; i++ {
		ops = ops[:0]
		if err := v.MakeReservation(i%8, int(i%3), i%16); err != nil {
			t.Fatal(err)
		}
		r := core.CheckTrace(core.X86{}, &trace.Trace{Ops: ops})
		if !r.Clean() {
			t.Fatalf("clean reservation flagged: %s", r.Summary())
		}
	}
	ops = ops[:0]
	if err := v.CancelReservation(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	r := core.CheckTrace(core.X86{}, &trace.Trace{Ops: ops})
	if !r.Clean() {
		t.Fatalf("clean cancel flagged: %s", r.Summary())
	}
}

// TestVacationCrashAtomicity: the cross-table invariant holds in every
// sampled crash state — a reservation is never half-applied.
func TestVacationCrashAtomicity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	dev := pmem.New(devSize, nil)
	v, err := NewVacation(dev, 16, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		v.MakeReservation(i%8, int(i%3), i%16)
	}
	for trial := 0; trial < 15; trial++ {
		img := dev.SampleCrash(rng, pmem.CrashOptions{})
		v2, err := OpenVacation(pmem.FromImage(img, nil), 16, 8)
		if err != nil {
			t.Fatal(err)
		}
		if v2.TotalReserved() != v2.CustomerCount() {
			t.Fatalf("trial %d: counts diverged: %d reserved vs %d listed",
				trial, v2.TotalReserved(), v2.CustomerCount())
		}
	}
}
