package whisper

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"pmtest/internal/mnemosyne"
	"pmtest/internal/pmdk"
	"pmtest/internal/pmem"
)

// Memcached is the WHISPER Memcached analog: a multi-threaded key-value
// cache whose persistent map is backed by Mnemosyne durable transactions
// (paper Table 4). Keys are sharded across server threads; each thread
// owns its own PM region, matching the paper's observation that
// inter-thread PM dependencies are rare (§7.4) and letting each thread
// run its own PMTest tracker.
//
// Per-shard layout (in the region's data area): a fixed open-addressed
// slot table. Slot: {state(8), key(8), vlen(8), value(valCap)}.
type Memcached struct {
	shards []*memShard
}

type memShard struct {
	mu     sync.Mutex
	region *mnemosyne.Region
	nSlots uint64
	valCap uint64
	check  bool
	// hook runs after each operation (trace sectioning).
	hook func()
}

const (
	memEmpty = 0
	memUsed  = 1
	memTomb  = 2
)

// MemcachedShardSpace returns the device size needed per shard.
func MemcachedShardSpace(nSlots, valCap uint64) uint64 {
	return mnemosyne.DataStart(1<<20) + nSlots*alignLine(24+valCap) + pmem.LineSize
}

// NewMemcached creates a memcached with one shard (server thread) per
// device.
func NewMemcached(devs []*pmem.Device, nSlots, valCap uint64) (*Memcached, error) {
	if len(devs) == 0 {
		return nil, errors.New("whisper: memcached needs at least one shard device")
	}
	m := &Memcached{}
	for _, dev := range devs {
		r, err := mnemosyne.Create(dev, 1<<20)
		if err != nil {
			return nil, err
		}
		m.shards = append(m.shards, &memShard{region: r, nSlots: nSlots, valCap: valCap})
	}
	return m, nil
}

// OpenMemcached reattaches to existing shard devices after a restart,
// running each region's redo-log recovery. Geometry (nSlots, valCap)
// must match the original NewMemcached call.
func OpenMemcached(devs []*pmem.Device, nSlots, valCap uint64) (*Memcached, error) {
	if len(devs) == 0 {
		return nil, errors.New("whisper: memcached needs at least one shard device")
	}
	m := &Memcached{}
	for _, dev := range devs {
		r, _, err := mnemosyne.Open(dev)
		if err != nil {
			return nil, err
		}
		m.shards = append(m.shards, &memShard{region: r, nSlots: nSlots, valCap: valCap})
	}
	return m, nil
}

// Shards returns the number of server threads.
func (m *Memcached) Shards() int { return len(m.shards) }

// Region returns shard i's Mnemosyne region (annotation control).
func (m *Memcached) Region(i int) *mnemosyne.Region { return m.shards[i].region }

// SetCheckers enables per-operation consistency checkers on all shards.
func (m *Memcached) SetCheckers(on bool) {
	for _, s := range m.shards {
		s.check = on
		s.region.SetAnnotations(on)
	}
}

// SetSectionHook installs fn on shard i; it runs after each completed
// operation on that shard (the trace section boundary).
func (m *Memcached) SetSectionHook(i int, fn func()) { m.shards[i].hook = fn }

func (m *Memcached) shardFor(key uint64) *memShard {
	return m.shards[mix(key)%uint64(len(m.shards))]
}

// ShardIndex returns which server thread owns key.
func (m *Memcached) ShardIndex(key uint64) int {
	return int(mix(key) % uint64(len(m.shards)))
}

func (s *memShard) slotOff(i uint64) uint64 {
	return s.region.DataOff() + i*alignLine(24+s.valCap)
}

// Set stores key→val durably.
func (m *Memcached) Set(key uint64, val []byte) error {
	s := m.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.section()
	if uint64(len(val)) > s.valCap {
		return errors.New("whisper: value too large")
	}
	dev := s.region.Device()
	start := mix(key) % s.nSlots
	target := uint64(0)
	haveTarget := false
	firstTomb, haveTomb := uint64(0), false
probe:
	for probe := uint64(0); probe < s.nSlots; probe++ {
		i := (start + probe) % s.nSlots
		off := s.slotOff(i)
		switch dev.Load64(off) {
		case memUsed:
			if dev.Load64(off+8) == key {
				target, haveTarget = off, true
				break probe
			}
		case memTomb:
			if !haveTomb {
				firstTomb, haveTomb = off, true
			}
		default:
			target, haveTarget = off, true
			if haveTomb {
				target = firstTomb
			}
			break probe
		}
	}
	if !haveTarget && haveTomb {
		target, haveTarget = firstTomb, true
	}
	if haveTarget {
		off := target
		// One durable transaction updates state+key+vlen+value atomically.
		return s.region.Durable(func(w *mnemosyne.TxWriter) error {
			var hdr [24]byte
			binary.LittleEndian.PutUint64(hdr[0:8], memUsed)
			binary.LittleEndian.PutUint64(hdr[8:16], key)
			binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(val)))
			if err := w.Write(off, hdr[:]); err != nil { //pmlint:ignore missedflush transactional write: Commit applies and flushes it
				return err
			}
			return w.Write(off+24, val) //pmlint:ignore missedflush transactional write: Commit applies and flushes it
		})
	}
	return fmt.Errorf("whisper: memcached shard full")
}

// Get returns the value for key.
func (m *Memcached) Get(key uint64) ([]byte, bool) {
	s := m.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.section()
	dev := s.region.Device()
	start := mix(key) % s.nSlots
	for probe := uint64(0); probe < s.nSlots; probe++ {
		i := (start + probe) % s.nSlots
		off := s.slotOff(i)
		switch dev.Load64(off) {
		case memUsed:
			if dev.Load64(off+8) == key {
				n := dev.Load64(off + 16)
				return dev.LoadBytes(off+24, n), true
			}
		case memTomb:
			continue
		default:
			return nil, false
		}
	}
	return nil, false
}

// Delete removes key durably; it returns false when absent.
func (m *Memcached) Delete(key uint64) (bool, error) {
	s := m.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.section()
	dev := s.region.Device()
	start := mix(key) % s.nSlots
	for probe := uint64(0); probe < s.nSlots; probe++ {
		i := (start + probe) % s.nSlots
		off := s.slotOff(i)
		switch dev.Load64(off) {
		case memUsed:
			if dev.Load64(off+8) != key {
				continue
			}
			// One durable transaction marks the slot as a tombstone so
			// later probes continue through it.
			err := s.region.Durable(func(w *mnemosyne.TxWriter) error {
				return w.Write64(off, memTomb)
			})
			return err == nil, err
		case memTomb:
			continue
		default:
			return false, nil
		}
	}
	return false, nil
}

func (s *memShard) section() {
	if s.hook != nil {
		s.hook()
	}
}

// Redis is the WHISPER Redis analog: a single-threaded key-value store on
// the PMDK transactional hashmap with volatile LRU bookkeeping, driven by
// the redis-cli LRU test client (paper Table 4).
type Redis struct {
	hm       *HashmapTX
	capacity int
	// volatile LRU state, rebuilt empty on restart (Redis treats PM as
	// the durable store; recency is advisory).
	order map[uint64]int
	clock int
	check bool
}

// OpenRedis reattaches to an existing Redis device after a restart. The
// LRU recency state is volatile in real Redis too: it restarts cold, so
// every recovered key is seeded with recency zero.
func OpenRedis(dev *pmem.Device, capacity int) (*Redis, error) {
	hm, err := OpenHashmapTX(dev)
	if err != nil {
		return nil, err
	}
	r := &Redis{hm: hm, capacity: capacity, order: map[uint64]int{}}
	// Rebuild the key set by walking the buckets.
	d := hm.Device()
	for b := uint64(0); b < hm.nBuckets; b++ {
		for cur := d.Load64(hm.rootOff + 8 + b*8); cur != 0; cur = d.Load64(cur + hmNext) {
			r.order[d.Load64(cur+hmKey)] = 0
		}
	}
	return r, nil
}

// NewRedis creates a Redis store holding at most capacity keys before
// LRU eviction.
func NewRedis(dev *pmem.Device, nBuckets uint64, capacity int) (*Redis, error) {
	hm, err := NewHashmapTX(dev, nBuckets, nil)
	if err != nil {
		return nil, err
	}
	return &Redis{hm: hm, capacity: capacity, order: map[uint64]int{}}, nil
}

// SetCheckers enables transaction checkers per command.
func (r *Redis) SetCheckers(on bool) {
	r.check = on
	r.hm.SetCheckers(on)
}

// Device returns the backing device.
func (r *Redis) Device() *pmem.Device { return r.hm.Device() }

// Pool returns the backing pmdk pool.
func (r *Redis) Pool() *pmdk.Pool { return r.hm.Pool() }

// Set stores key→val, evicting the least-recently-used key at capacity.
func (r *Redis) Set(key uint64, val []byte) error {
	if _, seen := r.order[key]; !seen && len(r.order) >= r.capacity {
		// Evict the LRU key.
		lruKey, lruClock := uint64(0), int(1<<62)
		for k, c := range r.order {
			if c < lruClock {
				lruKey, lruClock = k, c
			}
		}
		if _, err := r.hm.Delete(lruKey); err != nil {
			return err
		}
		delete(r.order, lruKey)
	}
	if err := r.hm.Insert(key, val); err != nil {
		return err
	}
	r.clock++
	r.order[key] = r.clock
	return nil
}

// Get returns the value for key and refreshes its recency.
func (r *Redis) Get(key uint64) ([]byte, bool) {
	v, ok := r.hm.Get(key)
	if ok {
		r.clock++
		r.order[key] = r.clock
	}
	return v, ok
}

// Len returns the number of live keys.
func (r *Redis) Len() int { return len(r.order) }
