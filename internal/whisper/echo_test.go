package whisper

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pmtest/internal/core"
	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

func newEcho(t testing.TB, sink trace.Sink, bugs BugSet) *Echo {
	t.Helper()
	e, err := NewEcho(pmem.New(1<<22, sink), 1<<19, bugs)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEchoSetGetDelete(t *testing.T) {
	e := newEcho(t, nil, nil)
	e.Set(1, []byte("one"))
	e.Set(2, []byte("two"))
	e.Set(1, []byte("uno")) // overwrite
	if v, ok := e.Get(1); !ok || string(v) != "uno" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	ok, err := e.Delete(2)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, found := e.Get(2); found {
		t.Fatal("deleted key present")
	}
	if ok, _ := e.Delete(2); ok {
		t.Fatal("double delete succeeded")
	}
	if e.Len() != 1 {
		t.Fatalf("Len = %d", e.Len())
	}
}

func TestEchoRecoveryReplaysLog(t *testing.T) {
	dev := pmem.New(1<<22, nil)
	e, err := NewEcho(dev, 1<<19, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		e.Set(i, []byte{byte(i), byte(i + 1)})
	}
	e.Delete(7)
	e2, err := OpenEcho(pmem.FromImage(dev.Image(), nil))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Len() != 49 {
		t.Fatalf("Len after recovery = %d", e2.Len())
	}
	if _, found := e2.Get(7); found {
		t.Fatal("tombstone not replayed")
	}
	if v, ok := e2.Get(12); !ok || v[0] != 12 {
		t.Fatal("value lost in recovery")
	}
	// Recovered store keeps working.
	if err := e2.Set(100, []byte("after")); err != nil {
		t.Fatal(err)
	}
}

func TestEchoCompactionFlipsAreas(t *testing.T) {
	dev := pmem.New(1<<22, nil)
	e, err := NewEcho(dev, 4096, nil) // small area to force compaction
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{0xCD}, 100)
	// Overwrite few keys many times: log fills with garbage, compaction
	// reclaims it.
	for i := 0; i < 200; i++ {
		if err := e.Set(uint64(i%5), val); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	if e.Len() != 5 {
		t.Fatalf("Len = %d", e.Len())
	}
	for k := uint64(0); k < 5; k++ {
		if v, ok := e.Get(k); !ok || !bytes.Equal(v, val) {
			t.Fatalf("key %d corrupt after compactions", k)
		}
	}
	// Recovery after compaction.
	e2, err := OpenEcho(pmem.FromImage(dev.Image(), nil))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Len() != 5 {
		t.Fatalf("recovered Len = %d", e2.Len())
	}
}

func TestEchoFullWhenLiveSetExceedsArea(t *testing.T) {
	e, err := NewEcho(pmem.New(1<<22, nil), 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{1}, 100)
	var sawFull bool
	for i := uint64(0); i < 50; i++ {
		if err := e.Set(i, val); err != nil {
			if !errors.Is(err, ErrEchoFull) {
				t.Fatal(err)
			}
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("live set exceeding the area never reported full")
	}
}

func TestEchoCommittedSurvivesCrashes(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	dev := pmem.New(1<<22, nil)
	e, err := NewEcho(dev, 1<<19, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 40; i++ {
		e.Set(i, []byte{byte(i)})
	}
	for trial := 0; trial < 20; trial++ {
		img := dev.SampleCrash(rng, pmem.CrashOptions{})
		e2, err := OpenEcho(pmem.FromImage(img, nil))
		if err != nil {
			t.Fatalf("trial %d: recovery failed: %v", trial, err)
		}
		for i := uint64(0); i < 40; i++ {
			if v, ok := e2.Get(i); !ok || v[0] != byte(i) {
				t.Fatalf("trial %d: committed key %d lost", trial, i)
			}
		}
	}
}

func TestEchoCrashDuringCompactionAtomic(t *testing.T) {
	// Crash in the middle of Compact: recovery must see either the
	// complete old area or the complete new one.
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 20; trial++ {
		dev := pmem.New(1<<22, nil)
		e, err := NewEcho(dev, 8192, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 10; i++ {
			e.Set(i, []byte{byte(i)})
		}
		// Run compaction but crash before its final old-commit reset has
		// necessarily persisted (sample mid-state).
		if err := e.Compact(); err != nil {
			t.Fatal(err)
		}
		img := dev.SampleCrash(rng, pmem.CrashOptions{})
		e2, err := OpenEcho(pmem.FromImage(img, nil))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if e2.Len() != 10 {
			t.Fatalf("trial %d: Len = %d after compaction crash", trial, e2.Len())
		}
		for i := uint64(0); i < 10; i++ {
			if v, ok := e2.Get(i); !ok || v[0] != byte(i) {
				t.Fatalf("trial %d: key %d lost across compaction crash", trial, i)
			}
		}
	}
}

func TestEchoCheckedCleanAndBuggy(t *testing.T) {
	run := func(bugs BugSet) []core.Report {
		var ops []trace.Op
		e := newEcho(t, recorder{&ops}, bugs)
		e.SetCheckers(true)
		var reports []core.Report
		for i := uint64(0); i < 20; i++ {
			ops = ops[:0]
			if err := e.Set(i, []byte("payload")); err != nil {
				t.Fatal(err)
			}
			reports = append(reports, core.CheckTrace(core.X86{},
				&trace.Trace{Ops: append([]trace.Op(nil), ops...)}))
		}
		return reports
	}
	for _, r := range run(nil) {
		if !r.Clean() {
			t.Fatalf("clean echo flagged: %s", r.Summary())
		}
	}
	if core.CountCode(run(BugSet{BugEchoSkipEntryFlush: true}), core.CodeOrderViolation) == 0 {
		t.Fatal("skip-entry-flush not flagged")
	}
	if core.CountCode(run(BugSet{BugEchoSkipCommitFence: true}), core.CodeNotPersisted) == 0 {
		t.Fatal("skip-commit-fence not flagged")
	}
}

// TestQuickEchoModel: random set/delete/compact against a map model, with
// durable reopen.
func TestQuickEchoModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := pmem.New(1<<22, nil)
		e, err := NewEcho(dev, 1<<16, nil)
		if err != nil {
			return false
		}
		model := map[uint64]byte{}
		for i := 0; i < 120; i++ {
			k := uint64(rng.Intn(20))
			switch rng.Intn(5) {
			case 0:
				ok, err := e.Delete(k)
				if err != nil {
					return false
				}
				if _, in := model[k]; in != ok {
					return false
				}
				delete(model, k)
			case 1:
				if err := e.Compact(); err != nil {
					return false
				}
			default:
				v := byte(rng.Intn(255) + 1)
				if err := e.Set(k, []byte{v}); err != nil {
					return false
				}
				model[k] = v
			}
		}
		check := func(ec *Echo) bool {
			if ec.Len() != len(model) {
				return false
			}
			for k, v := range model {
				got, ok := ec.Get(k)
				if !ok || got[0] != v {
					return false
				}
			}
			return true
		}
		if !check(e) {
			return false
		}
		e2, err := OpenEcho(pmem.FromImage(dev.Image(), nil))
		if err != nil {
			return false
		}
		return check(e2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
