package whisper

import (
	"pmtest/internal/pmdk"
	"pmtest/internal/pmem"
)

// HashmapTX is the WHISPER/PMDK transactional hashmap: a fixed bucket
// array of chain heads, every insert one PMDK transaction.
//
// Root object: nBuckets (8) followed by the bucket array (nBuckets * 8).
// Chain node layout (40 bytes): key, value offset, value length, next.
type HashmapTX struct {
	pool     *pmdk.Pool
	rootOff  uint64
	nBuckets uint64
	bugs     BugSet
	check    bool
}

const (
	hmKey  = 0
	hmVal  = 8
	hmVLen = 16
	hmNext = 24
	hmSize = 32
)

// Named injection points.
const (
	BugHMTxSkipBucketLog   = "hashmap-tx-skip-bucket-log"   // bucket head updated without TX_ADD
	BugHMTxSkipValueLog    = "hashmap-tx-skip-value-log"    // value overwrite without TX_ADD
	BugHMTxDoubleBucketLog = "hashmap-tx-double-bucket-log" // bucket head logged twice
)

// NewHashmapTX creates a transactional hashmap with nBuckets buckets in a
// fresh pool on dev.
func NewHashmapTX(dev *pmem.Device, nBuckets uint64, bugs BugSet) (*HashmapTX, error) {
	if nBuckets == 0 {
		nBuckets = 1024
	}
	pool, err := pmdk.Create(dev, 0)
	if err != nil {
		return nil, err
	}
	root, err := pool.Root(8 + nBuckets*8)
	if err != nil {
		return nil, err
	}
	pool.Zero(root, 8+nBuckets*8)
	pool.Device().Store64(root, nBuckets)
	pool.Device().PersistBarrier(root, 8)
	return &HashmapTX{pool: pool, rootOff: root, nBuckets: nBuckets, bugs: bugs}, nil
}

// OpenHashmapTX reattaches to an existing pool.
func OpenHashmapTX(dev *pmem.Device) (*HashmapTX, error) {
	pool, _, err := pmdk.Open(dev)
	if err != nil {
		return nil, err
	}
	root, err := pool.Root(8)
	if err != nil {
		return nil, err
	}
	n := pool.Device().Load64(root)
	return &HashmapTX{pool: pool, rootOff: root, nBuckets: n}, nil
}

// Name implements Store.
func (h *HashmapTX) Name() string { return "HashMap (w/ TX)" }

// Device implements Store.
func (h *HashmapTX) Device() *pmem.Device { return h.pool.Device() }

// Pool exposes the backing pool.
func (h *HashmapTX) Pool() *pmdk.Pool { return h.pool }

// SetCheckers implements Checkered.
func (h *HashmapTX) SetCheckers(on bool) { h.check = on }

func (h *HashmapTX) bucketOff(key uint64) uint64 {
	return h.rootOff + 8 + (mix(key)%h.nBuckets)*8
}

// Insert adds or updates key→val in one transaction.
func (h *HashmapTX) Insert(key uint64, val []byte) error {
	if h.check {
		txCheckerStart(h.Device())
		defer txCheckerEnd(h.Device())
	}
	return h.pool.Tx(func(tx *pmdk.Tx) error {
		dev := h.pool.Device()
		bucket := h.bucketOff(key)
		// Existing key → replace value.
		for cur := dev.Load64(bucket); cur != 0; cur = dev.Load64(cur + hmNext) {
			if dev.Load64(cur+hmKey) != key {
				continue
			}
			vOff, err := tx.Alloc(uint64(len(val)))
			if err != nil {
				return err
			}
			tx.Set(vOff, val)
			if !h.bugs.On(BugHMTxSkipValueLog) {
				tx.Add(cur+hmVal, 16)
			}
			oldOff := dev.Load64(cur + hmVal)
			oldLen := dev.Load64(cur + hmVLen)
			tx.Set64(cur+hmVal, vOff)
			tx.Set64(cur+hmVLen, uint64(len(val)))
			h.pool.Free(oldOff, oldLen)
			return nil
		}
		vOff, err := tx.Alloc(uint64(len(val)))
		if err != nil {
			return err
		}
		tx.Set(vOff, val)
		node, err := tx.Alloc(hmSize)
		if err != nil {
			return err
		}
		tx.Set64(node+hmKey, key)
		tx.Set64(node+hmVal, vOff)
		tx.Set64(node+hmVLen, uint64(len(val)))
		tx.Set64(node+hmNext, dev.Load64(bucket))
		if !h.bugs.On(BugHMTxSkipBucketLog) {
			tx.Add(bucket, 8)
		}
		if h.bugs.On(BugHMTxDoubleBucketLog) {
			tx.Add(bucket, 8)
			tx.Add(bucket, 8)
		}
		tx.Set64(bucket, node)
		return nil
	})
}

// Get implements Store.
func (h *HashmapTX) Get(key uint64) ([]byte, bool) {
	dev := h.pool.Device()
	for cur := dev.Load64(h.bucketOff(key)); cur != 0; cur = dev.Load64(cur + hmNext) {
		if dev.Load64(cur+hmKey) == key {
			return dev.LoadBytes(dev.Load64(cur+hmVal), dev.Load64(cur+hmVLen)), true
		}
	}
	return nil, false
}

// Delete removes key; it returns false when absent.
func (h *HashmapTX) Delete(key uint64) (bool, error) {
	dev := h.pool.Device()
	bucket := h.bucketOff(key)
	deleted := false
	err := h.pool.Tx(func(tx *pmdk.Tx) error {
		prevField := bucket
		for cur := dev.Load64(bucket); cur != 0; cur = dev.Load64(cur + hmNext) {
			if dev.Load64(cur+hmKey) == key {
				tx.Add(prevField, 8)
				tx.Set64(prevField, dev.Load64(cur+hmNext))
				h.pool.Free(dev.Load64(cur+hmVal), dev.Load64(cur+hmVLen))
				h.pool.Free(cur, hmSize)
				deleted = true
				return nil
			}
			prevField = cur + hmNext
		}
		return nil
	})
	return deleted, err
}

// mix is a 64-bit finalizer (splitmix64) for bucket selection.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
