package whisper

import (
	"pmtest/internal/pmdk"
)

// Delete removes key from the C-Tree in one transaction, returning false
// when the key is absent. Standard BST deletion: leaves unlink, one-child
// nodes splice, two-child nodes are replaced by their in-order successor.
// Every modified node (and the parent link) is snapshotted first.
func (c *CTree) Delete(key uint64) (bool, error) {
	if c.check {
		txCheckerStart(c.Device())
		defer txCheckerEnd(c.Device())
	}
	deleted := false
	err := c.pool.Tx(func(tx *pmdk.Tx) error {
		dev := c.pool.Device()
		// Locate the node and the field pointing at it.
		parentField := c.root
		cur := dev.Load64(c.root)
		for cur != 0 {
			k := dev.Load64(cur + ctKey)
			if k == key {
				break
			}
			if key < k {
				parentField = cur + ctLeft
			} else {
				parentField = cur + ctRight
			}
			cur = dev.Load64(parentField)
		}
		if cur == 0 {
			return nil // absent
		}
		deleted = true
		left := dev.Load64(cur + ctLeft)
		right := dev.Load64(cur + ctRight)

		switch {
		case left == 0 || right == 0:
			// Zero or one child: splice the child into the parent link.
			child := left
			if child == 0 {
				child = right
			}
			tx.Add(parentField, 8)
			tx.Set64(parentField, child)
			c.freeNode(cur)
		default:
			// Two children: find the in-order successor (leftmost of the
			// right subtree), splice it out, and move its payload into
			// cur.
			succField := cur + ctRight
			succ := right
			for l := dev.Load64(succ + ctLeft); l != 0; l = dev.Load64(succ + ctLeft) {
				succField = succ + ctLeft
				succ = l
			}
			// The successor has no left child by construction.
			tx.Add(succField, 8)
			tx.Set64(succField, dev.Load64(succ+ctRight))
			tx.Add(cur, ctSize)
			tx.Set64(cur+ctKey, dev.Load64(succ+ctKey))
			// Free cur's old value and adopt the successor's.
			c.pool.Free(dev.Load64(cur+ctVal), dev.Load64(cur+ctVLen))
			tx.Set64(cur+ctVal, dev.Load64(succ+ctVal))
			tx.Set64(cur+ctVLen, dev.Load64(succ+ctVLen))
			c.pool.Free(succ, ctSize)
		}
		return nil
	})
	return deleted, err
}

// freeNode releases a node and its value buffer.
func (c *CTree) freeNode(n uint64) {
	dev := c.pool.Device()
	c.pool.Free(dev.Load64(n+ctVal), dev.Load64(n+ctVLen))
	c.pool.Free(n, ctSize)
}

// Len counts the keys in the tree (test helper).
func (c *CTree) Len() int {
	n := 0
	c.Walk(func(uint64) { n++ })
	return n
}
