package whisper

import (
	"pmtest/internal/trace"
)

// Deletion for the low-level hashmap. Linear probing cannot simply clear
// the valid flag (that would break probe chains through the slot), so a
// deleted slot becomes a TOMBSTONE: lookups probe through it, inserts may
// reuse it. The state transition is a single 8-byte persist — atomic on
// its own, so deletion needs only one persist_barrier.

const slotTombstone = 2

// Delete removes key, returning false when absent.
func (h *HashmapLL) Delete(key uint64) (bool, error) {
	start := mix(key) % h.nSlots
	for probe := uint64(0); probe < h.nSlots; probe++ {
		i := (start + probe) % h.nSlots
		slot := h.slotOff(i)
		switch h.dev.Load64(slot + slotValid) {
		case 1:
			if h.dev.Load64(slot+slotKey) != key {
				continue
			}
			h.dev.Store64(slot+slotValid, slotTombstone)
			h.dev.PersistBarrier(slot+slotValid, 8)
			if h.check {
				h.dev.RecordOp(trace.Op{Kind: trace.KindIsPersist,
					Addr: slot + slotValid, Size: 8}, 1)
			}
			return true, nil
		case slotTombstone:
			continue // probe through
		default:
			return false, nil
		}
	}
	return false, nil
}

// The original Insert/Get treat any non-1 state as empty/stop; with
// tombstones in play they must probe through them. The methods below
// shadow the originals' probe loops; Insert prefers reusing the first
// tombstone encountered.

// insertProbe finds the slot for key: an existing live entry, the first
// tombstone, or the terminating empty slot.
func (h *HashmapLL) insertProbe(key uint64) (slot uint64, existing bool, ok bool) {
	start := mix(key) % h.nSlots
	firstTomb := uint64(0)
	haveTomb := false
	for probe := uint64(0); probe < h.nSlots; probe++ {
		i := (start + probe) % h.nSlots
		s := h.slotOff(i)
		switch h.dev.Load64(s + slotValid) {
		case 1:
			if h.dev.Load64(s+slotKey) == key {
				return s, true, true
			}
		case slotTombstone:
			if !haveTomb {
				firstTomb, haveTomb = s, true
			}
		default:
			if haveTomb {
				return firstTomb, false, true
			}
			return s, false, true
		}
	}
	if haveTomb {
		return firstTomb, false, true
	}
	return 0, false, false
}
