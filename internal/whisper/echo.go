package whisper

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

// Echo is the WHISPER "echo" analog: a key-value store built on a
// write-ahead log — a third crash-consistency discipline beside pmdk's
// undo log and mnemosyne's redo log. Every Set appends a checksummed
// record and then advances a durable commit pointer; recovery replays the
// log up to the pointer, verifying checksums. Compaction copies the live
// set into the inactive of two log areas and flips the active flag with
// one atomic persist (the A/B switch pattern).
//
// Layout:
//
//	0   magic
//	8   active area (0 or 1)
//	16  commit[0]: durable byte count of area 0
//	24  commit[1]
//	32  area capacity
//	64  area 0
//	64+cap  area 1
//
// Record: key(8) vlen(4) crc32(4) value... padded to 8.
type Echo struct {
	dev    *pmem.Device
	cap    uint64
	check  bool
	bugs   BugSet
	active int
	tail   uint64 // volatile append offset within the active area
	// index maps key → (absolute value offset, length); rebuilt on Open.
	index map[uint64]echoLoc
}

type echoLoc struct {
	off  uint64
	vlen uint32
}

const (
	echoMagicOff  = 0
	echoActiveOff = 8
	echoCommit0   = 16
	echoCommit1   = 24
	echoCapOff    = 32
	echoArea0     = 64
	echoMagic     = 0x4543484F2D474F21
	echoHdr       = 16 // key + vlen + crc
)

// Echo bug-injection points.
const (
	BugEchoSkipEntryFlush  = "echo-skip-entry-flush"  // record not persisted before the commit pointer
	BugEchoSkipCommitFence = "echo-skip-commit-fence" // commit pointer not durable when Set returns
)

// ErrEchoFull is returned when the active area cannot hold another record
// even after compaction.
var ErrEchoFull = errors.New("whisper: echo log full")

// NewEcho formats an Echo store with the given per-area capacity.
func NewEcho(dev *pmem.Device, areaCap uint64, bugs BugSet) (*Echo, error) {
	if dev.Size() < echoArea0+2*areaCap {
		return nil, errors.New("whisper: device too small for echo")
	}
	e := &Echo{dev: dev, cap: areaCap, bugs: bugs, index: map[uint64]echoLoc{}}
	dev.Store64(echoActiveOff, 0)
	dev.Store64(echoCommit0, 0)
	dev.Store64(echoCommit1, 0)
	dev.Store64(echoCapOff, areaCap)
	dev.PersistBarrier(echoActiveOff, 56)
	dev.Store64(echoMagicOff, echoMagic)
	dev.PersistBarrier(echoMagicOff, 8)
	return e, nil
}

// OpenEcho replays the committed log, verifying checksums.
func OpenEcho(dev *pmem.Device) (*Echo, error) {
	if dev.Load64(echoMagicOff) != echoMagic {
		return nil, errors.New("whisper: no echo store on device")
	}
	e := &Echo{
		dev:    dev,
		cap:    dev.Load64(echoCapOff),
		active: int(dev.Load64(echoActiveOff)),
		index:  map[uint64]echoLoc{},
	}
	commit := dev.Load64(e.commitOff())
	base := e.areaBase()
	pos := uint64(0)
	for pos+echoHdr <= commit {
		rec := base + pos
		key := dev.Load64(rec)
		vlen := dev.Load32(rec + 8)
		crc := dev.Load32(rec + 12)
		if pos+echoHdr+uint64(vlen) > commit {
			return nil, fmt.Errorf("whisper: echo record at %d exceeds commit", pos)
		}
		val := dev.LoadBytes(rec+echoHdr, uint64(vlen))
		if crc32.ChecksumIEEE(val) != crc {
			return nil, fmt.Errorf("whisper: echo checksum mismatch at %d (torn record)", pos)
		}
		if vlen == 0 {
			delete(e.index, key) // tombstone record
		} else {
			e.index[key] = echoLoc{off: rec + echoHdr, vlen: vlen}
		}
		pos += align8(echoHdr + uint64(vlen))
	}
	e.tail = commit
	return e, nil
}

func (e *Echo) areaBase() uint64 {
	if e.active == 1 {
		return echoArea0 + e.cap
	}
	return echoArea0
}

func (e *Echo) commitOff() uint64 {
	if e.active == 1 {
		return echoCommit1
	}
	return echoCommit0
}

// Device returns the backing device.
func (e *Echo) Device() *pmem.Device { return e.dev }

// SetCheckers enables the WAL-ordering checkers per operation.
func (e *Echo) SetCheckers(on bool) { e.check = on }

// Set appends key→val to the WAL and commits it.
//
//pmlint:ignore missedflush,missedfence BugEchoSkipEntryFlush/BugEchoSkipCommitFence are injected bugs
func (e *Echo) Set(key uint64, val []byte) error {
	need := align8(echoHdr + uint64(len(val)))
	if e.tail+need > e.cap {
		if err := e.Compact(); err != nil {
			return err
		}
		if e.tail+need > e.cap {
			return ErrEchoFull
		}
	}
	rec := e.areaBase() + e.tail
	buf := make([]byte, echoHdr+len(val))
	binary.LittleEndian.PutUint64(buf[0:8], key)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(val)))
	binary.LittleEndian.PutUint32(buf[12:16], crc32.ChecksumIEEE(val))
	copy(buf[echoHdr:], val)
	e.dev.Store(rec, buf)
	if !e.bugs.On(BugEchoSkipEntryFlush) {
		// WAL rule: the record must be durable before the commit pointer
		// can cover it.
		e.dev.PersistBarrier(rec, uint64(len(buf)))
	}
	newTail := e.tail + need
	e.dev.Store64(e.commitOff(), newTail)
	e.dev.CLWB(e.commitOff(), 8)
	if !e.bugs.On(BugEchoSkipCommitFence) {
		e.dev.SFence()
	}
	if e.check {
		e.dev.RecordOp(trace.Op{
			Kind: trace.KindIsOrderedBefore,
			Addr: rec, Size: uint64(len(buf)),
			Addr2: e.commitOff(), Size2: 8,
		}, 1)
		e.dev.RecordOp(trace.Op{Kind: trace.KindIsPersist,
			Addr: e.commitOff(), Size: 8}, 1)
	}
	e.tail = newTail
	if len(val) == 0 {
		delete(e.index, key)
	} else {
		e.index[key] = echoLoc{off: rec + echoHdr, vlen: uint32(len(val))}
	}
	return nil
}

// Delete appends a tombstone record (zero-length value).
func (e *Echo) Delete(key uint64) (bool, error) {
	if _, ok := e.index[key]; !ok {
		return false, nil
	}
	return true, e.Set(key, nil)
}

// Get returns the value for key.
func (e *Echo) Get(key uint64) ([]byte, bool) {
	loc, ok := e.index[key]
	if !ok {
		return nil, false
	}
	return e.dev.LoadBytes(loc.off, uint64(loc.vlen)), true
}

// Len returns the number of live keys.
func (e *Echo) Len() int { return len(e.index) }

// Compact copies the live records into the inactive area, persists them
// and the other area's commit pointer, then flips the active flag with a
// single atomic persist. A crash before the flip leaves the old area
// authoritative; after, the new one — never a mix.
func (e *Echo) Compact() error {
	oldActive := e.active
	newActive := 1 - oldActive
	newBase := uint64(echoArea0)
	newCommit := uint64(echoCommit0)
	if newActive == 1 {
		newBase = echoArea0 + e.cap
		newCommit = echoCommit1
	}
	// Copy live records.
	pos := uint64(0)
	newIndex := make(map[uint64]echoLoc, len(e.index))
	for key, loc := range e.index {
		val := e.dev.LoadBytes(loc.off, uint64(loc.vlen))
		need := align8(echoHdr + uint64(len(val)))
		if pos+need > e.cap {
			return ErrEchoFull
		}
		rec := newBase + pos
		buf := make([]byte, echoHdr+len(val))
		binary.LittleEndian.PutUint64(buf[0:8], key)
		binary.LittleEndian.PutUint32(buf[8:12], uint32(len(val)))
		binary.LittleEndian.PutUint32(buf[12:16], crc32.ChecksumIEEE(val))
		copy(buf[echoHdr:], val)
		e.dev.Store(rec, buf)
		e.dev.CLWB(rec, uint64(len(buf))) //pmlint:ignore missedfence the ErrEchoFull return abandons the compaction; nothing is published
		newIndex[key] = echoLoc{off: rec + echoHdr, vlen: uint32(len(val))}
		pos += need
	}
	e.dev.SFence()
	// Persist the new area's commit pointer.
	e.dev.Store64(newCommit, pos)
	e.dev.PersistBarrier(newCommit, 8)
	// The atomic switch.
	e.dev.Store64(echoActiveOff, uint64(newActive))
	e.dev.PersistBarrier(echoActiveOff, 8)
	if e.check {
		e.dev.RecordOp(trace.Op{Kind: trace.KindIsPersist,
			Addr: echoActiveOff, Size: 8}, 1)
	}
	// Reset the old area's commit pointer for its next turn.
	oldCommit := uint64(echoCommit0)
	if oldActive == 1 {
		oldCommit = echoCommit1
	}
	e.dev.Store64(oldCommit, 0)
	e.dev.PersistBarrier(oldCommit, 8)
	e.active = newActive
	e.tail = pos
	e.index = newIndex
	return nil
}

func align8(v uint64) uint64 { return (v + 7) &^ 7 }
