package whisper

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pmtest/internal/core"
	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

func TestCTreeDeleteLeaf(t *testing.T) {
	c, _ := NewCTree(pmem.New(devSize, nil), nil)
	for _, k := range []uint64{50, 25, 75} {
		c.Insert(k, []byte{byte(k)})
	}
	ok, err := c.Delete(25)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, found := c.Get(25); found {
		t.Fatal("deleted key still present")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCTreeDeleteRootWithTwoChildren(t *testing.T) {
	c, _ := NewCTree(pmem.New(devSize, nil), nil)
	for _, k := range []uint64{50, 25, 75, 60, 90} {
		c.Insert(k, []byte{byte(k)})
	}
	ok, _ := c.Delete(50)
	if !ok {
		t.Fatal("root delete failed")
	}
	var keys []uint64
	c.Walk(func(k uint64) { keys = append(keys, k) })
	want := []uint64{25, 60, 75, 90}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestCTreeDeleteAbsent(t *testing.T) {
	c, _ := NewCTree(pmem.New(devSize, nil), nil)
	c.Insert(1, []byte{1})
	ok, err := c.Delete(99)
	if err != nil || ok {
		t.Fatalf("Delete(absent) = %v, %v", ok, err)
	}
}

// TestQuickCTreeInsertDelete: random insert/delete sequences match a map
// model, the walk stays sorted, and the durable image reopens to the
// same contents.
func TestQuickCTreeInsertDelete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := pmem.New(devSize, nil)
		c, err := NewCTree(dev, nil)
		if err != nil {
			return false
		}
		model := map[uint64]byte{}
		for i := 0; i < 120; i++ {
			k := uint64(rng.Intn(30))
			if rng.Intn(3) == 0 {
				ok, err := c.Delete(k)
				if err != nil {
					return false
				}
				if _, inModel := model[k]; inModel != ok {
					return false
				}
				delete(model, k)
			} else {
				v := byte(rng.Intn(256))
				if err := c.Insert(k, []byte{v}); err != nil {
					return false
				}
				model[k] = v
			}
		}
		// Volatile view matches the model.
		for k, v := range model {
			got, ok := c.Get(k)
			if !ok || got[0] != v {
				return false
			}
		}
		if c.Len() != len(model) {
			return false
		}
		// Walk sorted.
		var keys []uint64
		c.Walk(func(k uint64) { keys = append(keys, k) })
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			return false
		}
		// Durable view matches after reopen.
		c2, err := OpenCTree(pmem.FromImage(dev.Image(), nil))
		if err != nil {
			return false
		}
		for k, v := range model {
			got, ok := c2.Get(k)
			if !ok || got[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestCTreeDeleteCheckedClean: deletes under full checker instrumentation
// produce no findings.
func TestCTreeDeleteCheckedClean(t *testing.T) {
	var ops []trace.Op
	c, _ := NewCTree(pmem.New(devSize, recorder{&ops}), nil)
	c.SetCheckers(true)
	for i := uint64(0); i < 20; i++ {
		c.Insert(i*3, []byte{byte(i)})
	}
	for i := uint64(0); i < 20; i += 2 {
		ops = ops[:0]
		if _, err := c.Delete(i * 3); err != nil {
			t.Fatal(err)
		}
		r := core.CheckTrace(core.X86{}, &trace.Trace{Ops: ops})
		if !r.Clean() {
			t.Fatalf("clean delete flagged: %s", r.Summary())
		}
	}
}

// TestCTreeDeleteCrashConsistent: a committed delete survives any crash;
// sampling recovery after deletes never resurrects or loses keys.
func TestCTreeDeleteCrashConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dev := pmem.New(devSize, nil)
	c, _ := NewCTree(dev, nil)
	for i := uint64(0); i < 20; i++ {
		c.Insert(i, []byte{byte(i)})
	}
	for i := uint64(0); i < 10; i++ {
		c.Delete(i)
	}
	for trial := 0; trial < 15; trial++ {
		img := dev.SampleCrash(rng, pmem.CrashOptions{})
		c2, err := OpenCTree(pmem.FromImage(img, nil))
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 10; i++ {
			if _, found := c2.Get(i); found {
				t.Fatalf("trial %d: deleted key %d resurrected", trial, i)
			}
		}
		for i := uint64(10); i < 20; i++ {
			if _, found := c2.Get(i); !found {
				t.Fatalf("trial %d: surviving key %d lost", trial, i)
			}
		}
	}
}

// --- HashmapLL tombstone deletion ------------------------------------------

func TestHashmapLLDelete(t *testing.T) {
	h, err := NewHashmapLL(pmem.New(1<<22, nil), 64, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 30; i++ {
		h.Insert(i, []byte{byte(i)})
	}
	ok, err := h.Delete(7)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, found := h.Get(7); found {
		t.Fatal("deleted key present")
	}
	// Keys that probed past the deleted slot must remain reachable.
	for i := uint64(0); i < 30; i++ {
		if i == 7 {
			continue
		}
		if v, found := h.Get(i); !found || v[0] != byte(i) {
			t.Fatalf("key %d lost after tombstoning", i)
		}
	}
	if ok, _ := h.Delete(7); ok {
		t.Fatal("double delete succeeded")
	}
	// Reinsert reuses the tombstone.
	if err := h.Insert(7, []byte{77}); err != nil {
		t.Fatal(err)
	}
	if v, found := h.Get(7); !found || v[0] != 77 {
		t.Fatal("reinsert after delete failed")
	}
}

func TestQuickHashmapLLInsertDeleteModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := pmem.New(1<<22, nil)
		h, err := NewHashmapLL(dev, 64, 16, nil)
		if err != nil {
			return false
		}
		model := map[uint64]byte{}
		for i := 0; i < 150; i++ {
			k := uint64(rng.Intn(40))
			if rng.Intn(3) == 0 {
				ok, err := h.Delete(k)
				if err != nil {
					return false
				}
				if _, in := model[k]; in != ok {
					return false
				}
				delete(model, k)
			} else {
				v := byte(rng.Intn(256))
				if err := h.Insert(k, []byte{v}); err != nil {
					return false
				}
				model[k] = v
			}
		}
		for k, v := range model {
			got, ok := h.Get(k)
			if !ok || got[0] != v {
				return false
			}
		}
		// Durable reopen.
		h2, err := OpenHashmapLL(pmem.FromImage(dev.Image(), nil))
		if err != nil {
			return false
		}
		for k, v := range model {
			got, ok := h2.Get(k)
			if !ok || got[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
