package whisper

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
)

func startServer(t *testing.T) (*KVServer, *Memcached) {
	t.Helper()
	m := newMemcached(t, 2, nil)
	s, err := NewKVServer(m, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, m
}

func TestKVServerSetGet(t *testing.T) {
	s, _ := startServer(t)
	c, err := DialKV(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set(42, []byte("over the wire")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get(42)
	if err != nil || !ok || string(v) != "over the wire" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := c.Get(999); ok {
		t.Fatal("phantom key over the wire")
	}
}

func TestKVServerConcurrentClients(t *testing.T) {
	s, m := startServer(t)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			cl, err := DialKV(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := uint64(0); i < 50; i++ {
				key := base*1000 + i
				if err := cl.Set(key, []byte{byte(key)}); err != nil {
					t.Errorf("set %d: %v", key, err)
					return
				}
			}
		}(uint64(c))
	}
	wg.Wait()
	// Verify through the store directly.
	for c := uint64(0); c < 4; c++ {
		for i := uint64(0); i < 50; i++ {
			key := c*1000 + i
			v, ok := m.Get(key)
			if !ok || v[0] != byte(key) {
				t.Fatalf("key %d lost (%v, %v)", key, v, ok)
			}
		}
	}
}

func TestKVServerProtocolErrors(t *testing.T) {
	s, _ := startServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	send := func(line string) string {
		if _, err := conn.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 256)
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(string(buf[:n]))
	}
	if got := send("BOGUS"); !strings.HasPrefix(got, "ERR unknown command") {
		t.Fatalf("got %q", got)
	}
	if got := send("SET notanumber aa"); !strings.HasPrefix(got, "ERR bad key") {
		t.Fatalf("got %q", got)
	}
	if got := send("SET 1 zz"); !strings.HasPrefix(got, "ERR bad value") {
		t.Fatalf("got %q", got)
	}
	if got := send("SET 1"); !strings.HasPrefix(got, "ERR usage") {
		t.Fatalf("got %q", got)
	}
	if got := send("GET"); !strings.HasPrefix(got, "ERR usage") {
		t.Fatalf("got %q", got)
	}
}

func TestKVServerLargeValue(t *testing.T) {
	s, _ := startServer(t)
	c, err := DialKV(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	val := bytes.Repeat([]byte{0xAB}, 256) // shard valCap
	if err := c.Set(7, val); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(7)
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("round trip failed: %v %v", ok, err)
	}
	// Too large for the shard: server reports the error.
	if err := c.Set(8, bytes.Repeat([]byte{1}, 300)); err == nil {
		t.Fatal("oversized value accepted")
	}
}

func TestKVServerCloseUnblocksAccept(t *testing.T) {
	m := newMemcached(t, 1, nil)
	s, err := NewKVServer(m, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := DialKV(s.Addr()); err == nil {
		t.Fatal("dial succeeded after Close")
	}
}

func TestKVServerDelete(t *testing.T) {
	s, m := startServer(t)
	c, err := DialKV(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Set(5, []byte("bye"))
	ok, err := c.Delete(5)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, found := m.Get(5); found {
		t.Fatal("key survived DEL")
	}
	ok, err = c.Delete(5)
	if err != nil || ok {
		t.Fatalf("second Delete = %v, %v", ok, err)
	}
}

func TestMemcachedDeleteProbeChains(t *testing.T) {
	m := newMemcached(t, 1, nil)
	// Insert enough keys that probe chains form, delete some in the
	// middle, and verify the rest stay reachable.
	for i := uint64(0); i < 200; i++ {
		if err := m.Set(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 200; i += 3 {
		ok, err := m.Delete(i)
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = %v, %v", i, ok, err)
		}
	}
	for i := uint64(0); i < 200; i++ {
		v, found := m.Get(i)
		if i%3 == 0 {
			if found {
				t.Fatalf("deleted key %d present", i)
			}
		} else if !found || v[0] != byte(i) {
			t.Fatalf("key %d lost after deletions", i)
		}
	}
	// Tombstone reuse: re-set a deleted key.
	if err := m.Set(0, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	if v, found := m.Get(0); !found || v[0] != 0xEE {
		t.Fatal("reinsert after delete failed")
	}
}
