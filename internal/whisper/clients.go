package whisper

import (
	"fmt"
	"math/rand"

	"pmtest/internal/pmfs"
)

// Client generators mirroring paper Table 4's load generators: Memslap
// (5% set / 95% get), YCSB (50% update / 50% read, zipfian keys), the
// redis-cli LRU test, Filebench, and an OLTP-complex analog over PMFS.

// KVOp is one generated key-value operation.
type KVOp struct {
	// IsSet selects a write (set/update) rather than a read.
	IsSet bool
	Key   uint64
	Size  int // value size for sets
}

// MemslapOps generates n memslap-style operations: 5% sets, uniformly
// random keys (paper Table 4: "Memslap, 5% set").
func MemslapOps(n int, keySpace uint64, valSize int, seed int64) []KVOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]KVOp, n)
	for i := range ops {
		ops[i] = KVOp{
			IsSet: rng.Intn(100) < 5,
			Key:   uint64(rng.Int63n(int64(keySpace))),
			Size:  valSize,
		}
	}
	return ops
}

// YCSBOps generates n YCSB workload-A-style operations: 50% updates over
// a zipfian key distribution (paper Table 4: "YCSB, 50% update").
func YCSBOps(n int, keySpace uint64, valSize int, seed int64) []KVOp {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.1, 1, keySpace-1)
	ops := make([]KVOp, n)
	for i := range ops {
		ops[i] = KVOp{
			IsSet: rng.Intn(100) < 50,
			Key:   zipf.Uint64(),
			Size:  valSize,
		}
	}
	return ops
}

// LRUOps generates the redis-cli LRU test: sets over a key space larger
// than the store capacity (forcing eviction) mixed with gets skewed
// toward recent keys.
func LRUOps(n int, keySpace uint64, valSize int, seed int64) []KVOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]KVOp, n)
	for i := range ops {
		if rng.Intn(100) < 50 {
			ops[i] = KVOp{IsSet: true, Key: uint64(rng.Int63n(int64(keySpace))), Size: valSize}
		} else {
			// Reads biased to the recently written half of the space.
			ops[i] = KVOp{Key: uint64(rng.Int63n(int64(keySpace/2 + 1)))}
		}
	}
	return ops
}

// RunKV drives a key-value store with the generated ops.
func RunKV(set func(uint64, []byte) error, get func(uint64) ([]byte, bool),
	ops []KVOp, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, 1<<16)
	rng.Read(buf)
	for _, op := range ops {
		if op.IsSet {
			if err := set(op.Key, buf[:op.Size]); err != nil {
				return err
			}
		} else {
			get(op.Key)
		}
	}
	return nil
}

// FSOp is one generated file-system operation.
type FSOp struct {
	Kind FSOpKind
	Name string
	Off  uint64
	Size int
}

// FSOpKind enumerates filebench/OLTP operation kinds.
type FSOpKind uint8

// File-system operation kinds.
const (
	FSCreate FSOpKind = iota
	FSWrite
	FSRead
	FSDelete
	FSFsync
	FSMkdir
)

// FilebenchOps generates a fileserver-style mix: create/write/read/delete
// over a rotating population of files spread across a small directory
// tree (paper Table 4: "NFS (Filebench)").
func FilebenchOps(n, nFiles, writeSize int, seed int64) []FSOp {
	rng := rand.New(rand.NewSource(seed))
	const nDirs = 4
	ops := make([]FSOp, 0, n+nDirs)
	for d := 0; d < nDirs; d++ {
		ops = append(ops, FSOp{Kind: FSMkdir, Name: fmt.Sprintf("dir%d", d)})
	}
	live := map[int]bool{}
	for len(ops) < n+nDirs {
		f := rng.Intn(nFiles)
		name := fmt.Sprintf("dir%d/fb%03d", f%nDirs, f)
		switch {
		case !live[f]:
			ops = append(ops, FSOp{Kind: FSCreate, Name: name})
			live[f] = true
		case rng.Intn(100) < 50:
			ops = append(ops, FSOp{Kind: FSWrite, Name: name,
				Off: uint64(rng.Intn(4)) * uint64(writeSize), Size: writeSize})
		case rng.Intn(100) < 80:
			ops = append(ops, FSOp{Kind: FSRead, Name: name,
				Off: 0, Size: writeSize})
		default:
			ops = append(ops, FSOp{Kind: FSDelete, Name: name})
			delete(live, f)
		}
	}
	return ops
}

// OLTPOps generates an OLTP-complex-style mix over a small set of table
// files: random in-place record updates followed by fsync, with
// occasional reads (paper Table 4: "MySQL (OLTP-complex)").
func OLTPOps(n, nTables, recordSize int, seed int64) []FSOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]FSOp, 0, n+nTables)
	for t := 0; t < nTables; t++ {
		ops = append(ops, FSOp{Kind: FSCreate, Name: fmt.Sprintf("tab%02d", t)})
	}
	for len(ops) < n+nTables {
		name := fmt.Sprintf("tab%02d", rng.Intn(nTables))
		rec := uint64(rng.Intn(64))
		switch rng.Intn(10) {
		case 0, 1, 2:
			ops = append(ops, FSOp{Kind: FSRead, Name: name,
				Off: rec * uint64(recordSize), Size: recordSize})
		default:
			ops = append(ops, FSOp{Kind: FSWrite, Name: name,
				Off: rec * uint64(recordSize), Size: recordSize})
			ops = append(ops, FSOp{Kind: FSFsync, Name: name})
		}
	}
	return ops
}

// RunFS drives a PMFS instance with the generated ops.
func RunFS(fs *pmfs.FS, ops []FSOp, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, 1<<16)
	rng.Read(buf)
	rbuf := make([]byte, 1<<16)
	for _, op := range ops {
		switch op.Kind {
		case FSCreate:
			if _, err := fs.CreateFile(op.Name); err != nil && err != pmfs.ErrExists {
				return err
			}
		case FSWrite:
			ino, err := fs.Lookup(op.Name)
			if err != nil {
				continue
			}
			if err := fs.WriteFile(ino, op.Off, buf[:op.Size]); err != nil {
				return err
			}
		case FSRead:
			ino, err := fs.Lookup(op.Name)
			if err != nil {
				continue
			}
			if _, err := fs.ReadFile(ino, op.Off, rbuf[:op.Size]); err != nil {
				return err
			}
		case FSDelete:
			if err := fs.Unlink(op.Name); err != nil && err != pmfs.ErrNotFound {
				return err
			}
		case FSMkdir:
			if _, err := fs.Mkdir(op.Name); err != nil && err != pmfs.ErrExists {
				return err
			}
		case FSFsync:
			ino, err := fs.Lookup(op.Name)
			if err != nil {
				continue
			}
			if err := fs.Fsync(ino); err != nil {
				return err
			}
		}
	}
	return nil
}
