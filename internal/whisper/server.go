package whisper

// A TCP front-end for the Memcached analog, so the workload can be
// driven the way the paper's real workloads are — by clients over a
// socket (Table 4: "each of them has its own load-generating client").
// The protocol is a minimal memcached-like text protocol:
//
//	SET <key> <hex-value>\n   →  OK\n | ERR <msg>\n
//	GET <key>\n               →  VALUE <hex>\n | MISS\n
//	DEL <key>\n               →  OK\n | MISS\n
//	QUIT\n                    →  (closes the connection)

import (
	"bufio"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
)

// KVServer serves a Memcached store over TCP.
type KVServer struct {
	store *Memcached
	ln    net.Listener
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewKVServer starts serving store on addr (use "127.0.0.1:0" for an
// ephemeral port).
func NewKVServer(store *Memcached, addr string) (*KVServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &KVServer{store: store, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *KVServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and waits for active connections to finish.
func (s *KVServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *KVServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

func (s *KVServer) serve(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewScanner(conn)
	r.Buffer(make([]byte, 1<<16), 1<<20)
	w := bufio.NewWriter(conn)
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToUpper(fields[0]) {
		case "SET":
			if len(fields) != 3 {
				fmt.Fprintf(w, "ERR usage: SET <key> <hex-value>\n")
				break
			}
			key, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintf(w, "ERR bad key: %v\n", err)
				break
			}
			val, err := hex.DecodeString(fields[2])
			if err != nil {
				fmt.Fprintf(w, "ERR bad value: %v\n", err)
				break
			}
			if err := s.store.Set(key, val); err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			fmt.Fprintf(w, "OK\n")
		case "GET":
			if len(fields) != 2 {
				fmt.Fprintf(w, "ERR usage: GET <key>\n")
				break
			}
			key, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintf(w, "ERR bad key: %v\n", err)
				break
			}
			if v, ok := s.store.Get(key); ok {
				fmt.Fprintf(w, "VALUE %s\n", hex.EncodeToString(v))
			} else {
				fmt.Fprintf(w, "MISS\n")
			}
		case "DEL":
			if len(fields) != 2 {
				fmt.Fprintf(w, "ERR usage: DEL <key>\n")
				break
			}
			key, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintf(w, "ERR bad key: %v\n", err)
				break
			}
			ok, err := s.store.Delete(key)
			switch {
			case err != nil:
				fmt.Fprintf(w, "ERR %v\n", err)
			case ok:
				fmt.Fprintf(w, "OK\n")
			default:
				fmt.Fprintf(w, "MISS\n")
			}
		case "QUIT":
			w.Flush()
			return
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", fields[0])
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// KVClient is a minimal client for KVServer (the memslap analog's
// transport).
type KVClient struct {
	conn net.Conn
	r    *bufio.Reader
}

// DialKV connects to a KVServer.
func DialKV(addr string) (*KVClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &KVClient{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close closes the connection.
func (c *KVClient) Close() error {
	fmt.Fprintf(c.conn, "QUIT\n")
	return c.conn.Close()
}

// Set stores key→val.
func (c *KVClient) Set(key uint64, val []byte) error {
	if _, err := fmt.Fprintf(c.conn, "SET %d %s\n", key, hex.EncodeToString(val)); err != nil {
		return err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	line = strings.TrimSpace(line)
	if line != "OK" {
		return errors.New(line)
	}
	return nil
}

// Delete removes key; ok is false on a miss.
func (c *KVClient) Delete(key uint64) (bool, error) {
	if _, err := fmt.Fprintf(c.conn, "DEL %d\n", key); err != nil {
		return false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return false, err
	}
	switch strings.TrimSpace(line) {
	case "OK":
		return true, nil
	case "MISS":
		return false, nil
	default:
		return false, errors.New(strings.TrimSpace(line))
	}
}

// Get fetches key's value; ok is false on a miss.
func (c *KVClient) Get(key uint64) (val []byte, ok bool, err error) {
	if _, err := fmt.Fprintf(c.conn, "GET %d\n", key); err != nil {
		return nil, false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return nil, false, err
	}
	line = strings.TrimSpace(line)
	switch {
	case line == "MISS":
		return nil, false, nil
	case strings.HasPrefix(line, "VALUE "):
		v, err := hex.DecodeString(strings.TrimPrefix(line, "VALUE "))
		return v, true, err
	default:
		return nil, false, errors.New(line)
	}
}
