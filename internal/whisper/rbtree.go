package whisper

import (
	"pmtest/internal/pmdk"
	"pmtest/internal/pmem"
)

// RBTree is the WHISPER/PMDK rbtree_map analog: a red-black tree where
// every insert (including recolouring and rotations) is one PMDK
// transaction. The known bug of Table 6 — rbtree_map.c:379, modifying a
// tree node without logging it — is reproduced by BugRBTreeSkipNodeLog.
//
// Node layout (56 bytes):
//
//	0  key
//	8  value offset
//	16 value length
//	24 left
//	32 right
//	40 parent
//	48 color (0 = black, 1 = red)
type RBTree struct {
	pool  *pmdk.Pool
	root  uint64 // root object: pointer to the top node
	bugs  BugSet
	check bool

	// addedTx tracks nodes snapshotted in the current transaction so the
	// correct code path calls TX_ADD exactly once per node (real PMDK
	// code is written the same way; duplicate TX_ADDs are the Fig. 13c
	// performance bug).
	addedTx map[uint64]bool
}

const (
	rbKey    = 0
	rbVal    = 8
	rbVLen   = 16
	rbLeft   = 24
	rbRight  = 32
	rbParent = 40
	rbColor  = 48
	rbSize   = 56

	black = 0
	red   = 1
)

// Named injection points.
const (
	BugRBTreeSkipNodeLog   = "rbtree-skip-node-log"   // rbtree_map.c:379 (known bug)
	BugRBTreeSkipUncleLog  = "rbtree-skip-uncle-log"  // recoloured uncle unlogged
	BugRBTreeSkipRootLog   = "rbtree-skip-root-log"   // root pointer unlogged
	BugRBTreeDoubleNodeLog = "rbtree-double-node-log" // node logged twice
)

// NewRBTree creates an RB-tree in a fresh pool on dev.
func NewRBTree(dev *pmem.Device, bugs BugSet) (*RBTree, error) {
	pool, err := pmdk.Create(dev, 0)
	if err != nil {
		return nil, err
	}
	root, err := pool.Root(8)
	if err != nil {
		return nil, err
	}
	return &RBTree{pool: pool, root: root, bugs: bugs}, nil
}

// OpenRBTree reattaches to an existing pool.
func OpenRBTree(dev *pmem.Device) (*RBTree, error) {
	pool, _, err := pmdk.Open(dev)
	if err != nil {
		return nil, err
	}
	root, err := pool.Root(8)
	if err != nil {
		return nil, err
	}
	return &RBTree{pool: pool, root: root}, nil
}

// Name implements Store.
func (r *RBTree) Name() string { return "RB-Tree" }

// Device implements Store.
func (r *RBTree) Device() *pmem.Device { return r.pool.Device() }

// Pool exposes the backing pool.
func (r *RBTree) Pool() *pmdk.Pool { return r.pool }

// SetCheckers implements Checkered.
func (r *RBTree) SetCheckers(on bool) { r.check = on }

func (r *RBTree) dev() *pmem.Device { return r.pool.Device() }

func (r *RBTree) get(n, field uint64) uint64 { return r.dev().Load64(n + field) }

// add snapshots a node once per transaction (unless a bug skips it).
func (r *RBTree) add(tx *pmdk.Tx, n uint64) {
	if n == 0 || r.addedTx[n] {
		return
	}
	if r.bugs.On(BugRBTreeSkipNodeLog) {
		// rbtree_map.c:379 — the node is modified without a snapshot.
		r.addedTx[n] = true
		return
	}
	tx.Add(n, rbSize)
	if r.bugs.On(BugRBTreeDoubleNodeLog) {
		tx.Add(n, rbSize)
	}
	r.addedTx[n] = true
}

func (r *RBTree) set(tx *pmdk.Tx, n, field, v uint64) {
	r.add(tx, n)
	tx.Set64(n+field, v)
}

func (r *RBTree) setRoot(tx *pmdk.Tx, n uint64) {
	if !r.bugs.On(BugRBTreeSkipRootLog) {
		if !r.addedTx[r.root] {
			tx.Add(r.root, 8)
			r.addedTx[r.root] = true
		}
	}
	tx.Set64(r.root, n)
}

// Insert adds key→val in one transaction.
func (r *RBTree) Insert(key uint64, val []byte) error {
	if r.check {
		txCheckerStart(r.Device())
		defer txCheckerEnd(r.Device())
	}
	r.addedTx = map[uint64]bool{}
	return r.pool.Tx(func(tx *pmdk.Tx) error {
		dev := r.dev()
		// Standard BST descent.
		var parent uint64
		cur := dev.Load64(r.root)
		for cur != 0 {
			k := r.get(cur, rbKey)
			if k == key {
				return r.updateValue(tx, cur, val)
			}
			parent = cur
			if key < k {
				cur = r.get(cur, rbLeft)
			} else {
				cur = r.get(cur, rbRight)
			}
		}
		vOff, err := tx.Alloc(uint64(len(val)))
		if err != nil {
			return err
		}
		tx.Set(vOff, val)
		node, err := tx.Alloc(rbSize)
		if err != nil {
			return err
		}
		// Fresh node: implicitly part of the transaction (TX_NEW).
		r.addedTx[node] = true
		tx.Set64(node+rbKey, key)
		tx.Set64(node+rbVal, vOff)
		tx.Set64(node+rbVLen, uint64(len(val)))
		tx.Set64(node+rbLeft, 0)
		tx.Set64(node+rbRight, 0)
		tx.Set64(node+rbParent, parent)
		tx.Set64(node+rbColor, red)
		if parent == 0 {
			r.setRoot(tx, node)
		} else if key < r.get(parent, rbKey) {
			r.set(tx, parent, rbLeft, node)
		} else {
			r.set(tx, parent, rbRight, node)
		}
		r.fixup(tx, node)
		return nil
	})
}

func (r *RBTree) updateValue(tx *pmdk.Tx, node uint64, val []byte) error {
	vOff, err := tx.Alloc(uint64(len(val)))
	if err != nil {
		return err
	}
	tx.Set(vOff, val)
	oldOff := r.get(node, rbVal)
	oldLen := r.get(node, rbVLen)
	r.set(tx, node, rbVal, vOff)
	tx.Set64(node+rbVLen, uint64(len(val)))
	r.pool.Free(oldOff, oldLen)
	return nil
}

func (r *RBTree) rotateLeft(tx *pmdk.Tx, x uint64) {
	y := r.get(x, rbRight)
	r.add(tx, x)
	r.add(tx, y)
	yl := r.get(y, rbLeft)
	tx.Set64(x+rbRight, yl)
	if yl != 0 {
		r.set(tx, yl, rbParent, x)
	}
	xp := r.get(x, rbParent)
	tx.Set64(y+rbParent, xp)
	if xp == 0 {
		r.setRoot(tx, y)
	} else if r.get(xp, rbLeft) == x {
		r.set(tx, xp, rbLeft, y)
	} else {
		r.set(tx, xp, rbRight, y)
	}
	tx.Set64(y+rbLeft, x)
	tx.Set64(x+rbParent, y)
}

func (r *RBTree) rotateRight(tx *pmdk.Tx, x uint64) {
	y := r.get(x, rbLeft)
	r.add(tx, x)
	r.add(tx, y)
	yr := r.get(y, rbRight)
	tx.Set64(x+rbLeft, yr)
	if yr != 0 {
		r.set(tx, yr, rbParent, x)
	}
	xp := r.get(x, rbParent)
	tx.Set64(y+rbParent, xp)
	if xp == 0 {
		r.setRoot(tx, y)
	} else if r.get(xp, rbRight) == x {
		r.set(tx, xp, rbRight, y)
	} else {
		r.set(tx, xp, rbLeft, y)
	}
	tx.Set64(y+rbRight, x)
	tx.Set64(x+rbParent, y)
}

// recolorUncle recolours the uncle node during fixup. The uncle is often
// touched nowhere else in the transaction, which is what makes skipping
// its snapshot a representative missing-backup bug.
func (r *RBTree) recolorUncle(tx *pmdk.Tx, u uint64) {
	if r.bugs.On(BugRBTreeSkipUncleLog) {
		r.addedTx[u] = true // modified without a snapshot
	}
	r.set(tx, u, rbColor, black)
}

func (r *RBTree) fixup(tx *pmdk.Tx, z uint64) {
	for {
		p := r.get(z, rbParent)
		if p == 0 || r.get(p, rbColor) == black {
			break
		}
		g := r.get(p, rbParent)
		if g == 0 {
			break
		}
		if p == r.get(g, rbLeft) {
			u := r.get(g, rbRight)
			if u != 0 && r.get(u, rbColor) == red {
				r.set(tx, p, rbColor, black)
				r.recolorUncle(tx, u)
				r.set(tx, g, rbColor, red)
				z = g
				continue
			}
			if z == r.get(p, rbRight) {
				z = p
				r.rotateLeft(tx, z)
				p = r.get(z, rbParent)
				g = r.get(p, rbParent)
			}
			r.set(tx, p, rbColor, black)
			r.set(tx, g, rbColor, red)
			r.rotateRight(tx, g)
			continue
		}
		u := r.get(g, rbLeft)
		if u != 0 && r.get(u, rbColor) == red {
			r.set(tx, p, rbColor, black)
			r.recolorUncle(tx, u)
			r.set(tx, g, rbColor, red)
			z = g
			continue
		}
		if z == r.get(p, rbLeft) {
			z = p
			r.rotateRight(tx, z)
			p = r.get(z, rbParent)
			g = r.get(p, rbParent)
		}
		r.set(tx, p, rbColor, black)
		r.set(tx, g, rbColor, red)
		r.rotateLeft(tx, g)
	}
	rootNode := r.dev().Load64(r.root)
	if r.get(rootNode, rbColor) != black {
		r.set(tx, rootNode, rbColor, black)
	}
}

// Get implements Store.
func (r *RBTree) Get(key uint64) ([]byte, bool) {
	dev := r.dev()
	cur := dev.Load64(r.root)
	for cur != 0 {
		k := r.get(cur, rbKey)
		switch {
		case k == key:
			return dev.LoadBytes(r.get(cur, rbVal), r.get(cur, rbVLen)), true
		case key < k:
			cur = r.get(cur, rbLeft)
		default:
			cur = r.get(cur, rbRight)
		}
	}
	return nil, false
}

// Validate checks the red-black invariants; it returns false with a
// reason when violated (property tests).
func (r *RBTree) Validate() (bool, string) {
	rootNode := r.dev().Load64(r.root)
	if rootNode == 0 {
		return true, ""
	}
	if r.get(rootNode, rbColor) != black {
		return false, "root is red"
	}
	ok := true
	reason := ""
	var rec func(n uint64, lo, hi uint64, haveLo, haveHi bool) int
	rec = func(n uint64, lo, hi uint64, haveLo, haveHi bool) int {
		if n == 0 {
			return 1
		}
		k := r.get(n, rbKey)
		if haveLo && k <= lo {
			ok, reason = false, "BST order violated"
		}
		if haveHi && k >= hi {
			ok, reason = false, "BST order violated"
		}
		if r.get(n, rbColor) == red {
			l, rr := r.get(n, rbLeft), r.get(n, rbRight)
			if (l != 0 && r.get(l, rbColor) == red) || (rr != 0 && r.get(rr, rbColor) == red) {
				ok, reason = false, "red node with red child"
			}
		}
		lb := rec(r.get(n, rbLeft), lo, k, haveLo, true)
		rb := rec(r.get(n, rbRight), k, hi, true, haveHi)
		if lb != rb {
			ok, reason = false, "black height mismatch"
		}
		h := lb
		if r.get(n, rbColor) == black {
			h++
		}
		return h
	}
	rec(rootNode, 0, 0, false, false)
	return ok, reason
}

// Walk visits keys in ascending order.
func (r *RBTree) Walk(visit func(key uint64)) {
	var rec func(n uint64)
	rec = func(n uint64) {
		if n == 0 {
			return
		}
		rec(r.get(n, rbLeft))
		visit(r.get(n, rbKey))
		rec(r.get(n, rbRight))
	}
	rec(r.dev().Load64(r.root))
}
