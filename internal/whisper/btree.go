package whisper

import (
	"pmtest/internal/pmdk"
	"pmtest/internal/pmem"
)

// BTree is the WHISPER/PMDK btree_map analog: a B-tree of order 8 where
// every insert is one PMDK transaction, with preemptive splitting on the
// way down. Its split/insert paths reproduce the two new PMDK bugs of
// paper Table 6 / Fig. 13b-c behind bug switches:
//
//   - BugBTreeSkipSplitLog: btree_map_create_split_node modifies the
//     original node's items without snapshotting it first
//     (btree_map.c:201, "modify a tree node without logging it").
//   - BugBTreeDoubleInsertLog: the rotate/insert path snapshots a node
//     that btree_map_insert_item already snapshotted in the same
//     transaction (btree_map.c:367, "log the same object twice").
//
// Node layout (248 bytes):
//
//	0    n (number of keys)
//	8    leaf flag
//	16   keys[7]
//	72   value offsets[7]
//	128  value lengths[7]
//	184  children[8]
type BTree struct {
	pool  *pmdk.Pool
	root  uint64 // root object: pointer to the top node
	bugs  BugSet
	check bool

	// addedTx tracks objects snapshotted in the current transaction so
	// correct code calls TX_ADD once per object (the fixed PMDK code
	// removed the redundant TX_ADD of Fig. 13c).
	addedTx map[uint64]bool
}

const (
	btOrder = 8 // max children; max keys = 7
	btMaxK  = btOrder - 1

	btN     = 0
	btLeaf  = 8
	btKeys  = 16
	btVals  = 72
	btVLens = 128
	btKids  = 184
	btSize  = 248
)

// Named injection points.
const (
	BugBTreeSkipSplitLog    = "btree-skip-split-log"    // Fig. 13b (new bug 2)
	BugBTreeDoubleInsertLog = "btree-double-insert-log" // Fig. 13c (new bug 3)
	BugBTreeSkipInsertLog   = "btree-skip-insert-log"   // leaf modified without TX_ADD
	BugBTreeSkipRootLog     = "btree-skip-root-log"     // root pointer updated without TX_ADD
	BugBTreeSkipParentLog   = "btree-skip-parent-log"   // split parent modified without TX_ADD
)

// NewBTree creates a B-tree in a fresh pool on dev.
func NewBTree(dev *pmem.Device, bugs BugSet) (*BTree, error) {
	pool, err := pmdk.Create(dev, 0)
	if err != nil {
		return nil, err
	}
	root, err := pool.Root(8)
	if err != nil {
		return nil, err
	}
	return &BTree{pool: pool, root: root, bugs: bugs}, nil
}

// OpenBTree reattaches to an existing pool.
func OpenBTree(dev *pmem.Device) (*BTree, error) {
	pool, _, err := pmdk.Open(dev)
	if err != nil {
		return nil, err
	}
	root, err := pool.Root(8)
	if err != nil {
		return nil, err
	}
	return &BTree{pool: pool, root: root}, nil
}

// Name implements Store.
func (b *BTree) Name() string { return "B-Tree" }

// Device implements Store.
func (b *BTree) Device() *pmem.Device { return b.pool.Device() }

// Pool exposes the backing pool.
func (b *BTree) Pool() *pmdk.Pool { return b.pool }

// SetCheckers implements Checkered.
func (b *BTree) SetCheckers(on bool) { b.check = on }

func (b *BTree) dev() *pmem.Device { return b.pool.Device() }

func (b *BTree) nodeN(n uint64) int     { return int(b.dev().Load64(n + btN)) }
func (b *BTree) nodeLeaf(n uint64) bool { return b.dev().Load64(n+btLeaf) == 1 }
func (b *BTree) key(n uint64, i int) uint64 {
	return b.dev().Load64(n + btKeys + uint64(i)*8)
}
func (b *BTree) child(n uint64, i int) uint64 {
	return b.dev().Load64(n + btKids + uint64(i)*8)
}

// addNode snapshots a node once per transaction.
func (b *BTree) addNode(tx *pmdk.Tx, node uint64) {
	if b.addedTx[node] {
		return
	}
	tx.Add(node, btSize)
	b.addedTx[node] = true
}

// newNode allocates an empty node inside the transaction. Fresh objects
// are implicitly part of the transaction (TX_NEW), so they never need a
// later snapshot.
func (b *BTree) newNode(tx *pmdk.Tx, leaf bool) (uint64, error) {
	n, err := tx.Alloc(btSize)
	if err != nil {
		return 0, err
	}
	b.addedTx[n] = true
	zero := make([]byte, btSize)
	tx.Set(n, zero)
	if leaf {
		tx.Set64(n+btLeaf, 1)
	}
	return n, nil
}

// Insert adds key→val in one transaction.
func (b *BTree) Insert(key uint64, val []byte) error {
	if b.check {
		txCheckerStart(b.Device())
		defer txCheckerEnd(b.Device())
	}
	b.addedTx = map[uint64]bool{}
	return b.pool.Tx(func(tx *pmdk.Tx) error {
		vOff, err := tx.Alloc(uint64(len(val)))
		if err != nil {
			return err
		}
		tx.Set(vOff, val)

		rootNode := b.dev().Load64(b.root)
		if rootNode == 0 {
			leaf, err := b.newNode(tx, true)
			if err != nil {
				return err
			}
			b.setItem(tx, leaf, 0, key, vOff, uint64(len(val)))
			tx.Set64(leaf+btN, 1)
			if !b.bugs.On(BugBTreeSkipRootLog) {
				tx.Add(b.root, 8)
			}
			tx.Set64(b.root, leaf)
			return nil
		}
		if b.nodeN(rootNode) == btMaxK {
			// Grow: new root, split the old one.
			newRoot, err := b.newNode(tx, false)
			if err != nil {
				return err
			}
			tx.Set64(newRoot+btKids, rootNode)
			if err := b.splitChild(tx, newRoot, 0); err != nil {
				return err
			}
			if !b.bugs.On(BugBTreeSkipRootLog) {
				tx.Add(b.root, 8)
			}
			tx.Set64(b.root, newRoot)
			rootNode = newRoot
		}
		return b.insertNonFull(tx, rootNode, key, vOff, uint64(len(val)))
	})
}

// setItem writes slot i of node (caller has snapshotted node or it is
// freshly allocated).
func (b *BTree) setItem(tx *pmdk.Tx, node uint64, i int, key, vOff, vLen uint64) {
	tx.Set64(node+btKeys+uint64(i)*8, key)
	tx.Set64(node+btVals+uint64(i)*8, vOff)
	tx.Set64(node+btVLens+uint64(i)*8, vLen)
}

// insertItem is btree_map_insert_item: snapshot the node, then shift and
// place the new item.
func (b *BTree) insertItem(tx *pmdk.Tx, node uint64, pos int, key, vOff, vLen uint64) {
	if !b.bugs.On(BugBTreeSkipInsertLog) {
		b.addNode(tx, node)
	} else {
		b.addedTx[node] = true
	}
	if b.bugs.On(BugBTreeDoubleInsertLog) {
		// btree_map.c:367 — the caller logs the node again even though
		// insert_item already snapshotted it (bypassing the dedup the
		// fixed code relies on).
		tx.Add(node, btSize)
	}
	n := b.nodeN(node)
	for j := n; j > pos; j-- {
		b.setItem(tx, node, j,
			b.key(node, j-1),
			b.dev().Load64(node+btVals+uint64(j-1)*8),
			b.dev().Load64(node+btVLens+uint64(j-1)*8))
	}
	b.setItem(tx, node, pos, key, vOff, vLen)
	tx.Set64(node+btN, uint64(n+1))
}

// splitChild is btree_map_create_split_node: child i of parent is full;
// move its upper half into a fresh node and lift the median into parent.
func (b *BTree) splitChild(tx *pmdk.Tx, parent uint64, i int) error {
	child := b.child(parent, i)
	right, err := b.newNode(tx, b.nodeLeaf(child))
	if err != nil {
		return err
	}
	mid := btMaxK / 2
	// Copy upper half to the fresh right node (no snapshot needed: new).
	for j := mid + 1; j < btMaxK; j++ {
		b.setItem(tx, right, j-mid-1,
			b.key(child, j),
			b.dev().Load64(child+btVals+uint64(j)*8),
			b.dev().Load64(child+btVLens+uint64(j)*8))
	}
	if !b.nodeLeaf(child) {
		for j := mid + 1; j < btOrder; j++ {
			tx.Set64(right+btKids+uint64(j-mid-1)*8, b.child(child, j))
		}
	}
	tx.Set64(right+btN, uint64(btMaxK-mid-1))

	midKey := b.key(child, mid)
	midVal := b.dev().Load64(child + btVals + uint64(mid)*8)
	midVLen := b.dev().Load64(child + btVLens + uint64(mid)*8)

	// Shrink the original child — THIS is the modification Fig. 13b's bug
	// performs without logging.
	if !b.bugs.On(BugBTreeSkipSplitLog) {
		b.addNode(tx, child)
	} else {
		b.addedTx[child] = true
	}
	tx.Set64(child+btN, uint64(mid))

	// Insert the median into the parent.
	if !b.bugs.On(BugBTreeSkipParentLog) {
		b.addNode(tx, parent)
	} else {
		b.addedTx[parent] = true
	}
	pn := b.nodeN(parent)
	for j := pn; j > i; j-- {
		b.setItem(tx, parent, j,
			b.key(parent, j-1),
			b.dev().Load64(parent+btVals+uint64(j-1)*8),
			b.dev().Load64(parent+btVLens+uint64(j-1)*8))
		tx.Set64(parent+btKids+uint64(j+1)*8, b.child(parent, j))
	}
	tx.Set64(parent+btKids+uint64(i+1)*8, right)
	b.setItem(tx, parent, i, midKey, midVal, midVLen)
	tx.Set64(parent+btN, uint64(pn+1))
	return nil
}

func (b *BTree) insertNonFull(tx *pmdk.Tx, node uint64, key, vOff, vLen uint64) error {
	for {
		n := b.nodeN(node)
		// Existing key → in-place value update.
		for i := 0; i < n; i++ {
			if b.key(node, i) == key {
				if !b.bugs.On(BugBTreeSkipInsertLog) {
					b.addNode(tx, node)
				}
				b.setItem(tx, node, i, key, vOff, vLen)
				return nil
			}
		}
		pos := 0
		for pos < n && b.key(node, pos) < key {
			pos++
		}
		if b.nodeLeaf(node) {
			b.insertItem(tx, node, pos, key, vOff, vLen)
			return nil
		}
		child := b.child(node, pos)
		if b.nodeN(child) == btMaxK {
			if err := b.splitChild(tx, node, pos); err != nil {
				return err
			}
			if key == b.key(node, pos) {
				if !b.bugs.On(BugBTreeSkipInsertLog) {
					b.addNode(tx, node)
				}
				b.setItem(tx, node, pos, key, vOff, vLen)
				return nil
			}
			if key > b.key(node, pos) {
				pos++
			}
			child = b.child(node, pos)
		}
		node = child
	}
}

// Get implements Store.
func (b *BTree) Get(key uint64) ([]byte, bool) {
	node := b.dev().Load64(b.root)
	for node != 0 {
		n := b.nodeN(node)
		pos := 0
		for pos < n && b.key(node, pos) < key {
			pos++
		}
		if pos < n && b.key(node, pos) == key {
			vOff := b.dev().Load64(node + btVals + uint64(pos)*8)
			vLen := b.dev().Load64(node + btVLens + uint64(pos)*8)
			return b.dev().LoadBytes(vOff, vLen), true
		}
		if b.nodeLeaf(node) {
			return nil, false
		}
		node = b.child(node, pos)
	}
	return nil, false
}

// Walk visits keys in ascending order.
func (b *BTree) Walk(visit func(key uint64)) {
	var rec func(n uint64)
	rec = func(n uint64) {
		if n == 0 {
			return
		}
		cnt := b.nodeN(n)
		leaf := b.nodeLeaf(n)
		for i := 0; i < cnt; i++ {
			if !leaf {
				rec(b.child(n, i))
			}
			visit(b.key(n, i))
		}
		if !leaf {
			rec(b.child(n, cnt))
		}
	}
	rec(b.dev().Load64(b.root))
}
