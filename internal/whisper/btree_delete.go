package whisper

import (
	"pmtest/internal/pmdk"
)

// B-tree deletion (single-pass CLRS: every node entered has at least t
// keys, restored preemptively by borrowing or merging). The borrow
// operations are btree_map_rotate_left/right — the functions in which
// the paper's Bug 3 lives (btree_map.c:367, Fig. 13c): the rotate path
// logs a node that insert_item/remove already logged in the same
// transaction. BugBTreeDoubleInsertLog reproduces that here too.

const btMinKeys = btOrder/2 - 1 // t-1 = 3 for order 8

// Delete removes key from the B-tree in one transaction, returning false
// when absent.
func (b *BTree) Delete(key uint64) (bool, error) {
	if b.check {
		txCheckerStart(b.Device())
		defer txCheckerEnd(b.Device())
	}
	b.addedTx = map[uint64]bool{}
	deleted := false
	err := b.pool.Tx(func(tx *pmdk.Tx) error {
		root := b.dev().Load64(b.root)
		if root == 0 {
			return nil
		}
		var err error
		deleted, err = b.deleteFrom(tx, root, key)
		if err != nil {
			return err
		}
		// Shrink the root when it empties.
		if b.nodeN(root) == 0 && !b.nodeLeaf(root) {
			tx.Add(b.root, 8)
			tx.Set64(b.root, b.child(root, 0))
			b.pool.Free(root, btSize)
		} else if b.nodeN(root) == 0 && b.nodeLeaf(root) {
			tx.Add(b.root, 8)
			tx.Set64(b.root, 0)
			b.pool.Free(root, btSize)
		}
		return nil
	})
	return deleted, err
}

// item reads slot i of node.
func (b *BTree) item(n uint64, i int) (key, vOff, vLen uint64) {
	d := b.dev()
	return b.key(n, i),
		d.Load64(n + btVals + uint64(i)*8),
		d.Load64(n + btVLens + uint64(i)*8)
}

// removeItem deletes slot i from a node (snapshot first), shifting the
// rest left; children to the right of i shift too when withChild is the
// child index to drop.
func (b *BTree) removeItem(tx *pmdk.Tx, n uint64, i int) {
	b.addNode(tx, n)
	cnt := b.nodeN(n)
	for j := i; j < cnt-1; j++ {
		k, vo, vl := b.item(n, j+1)
		b.setItem(tx, n, j, k, vo, vl)
	}
	tx.Set64(n+btN, uint64(cnt-1))
}

// deleteFrom removes key from the subtree at node, which is guaranteed
// to hold more than btMinKeys keys (or be the root).
func (b *BTree) deleteFrom(tx *pmdk.Tx, node uint64, key uint64) (bool, error) {
	cnt := b.nodeN(node)
	pos := 0
	for pos < cnt && b.key(node, pos) < key {
		pos++
	}
	if pos < cnt && b.key(node, pos) == key {
		if b.nodeLeaf(node) {
			_, vo, vl := b.item(node, pos)
			b.pool.Free(vo, vl)
			b.removeItem(tx, node, pos)
			return true, nil
		}
		return b.deleteInternal(tx, node, pos, key)
	}
	if b.nodeLeaf(node) {
		return false, nil
	}
	child, err := b.ensureRich(tx, node, pos)
	if err != nil {
		return false, err
	}
	return b.deleteFrom(tx, child, key)
}

// deleteInternal removes the key at slot pos of an internal node.
func (b *BTree) deleteInternal(tx *pmdk.Tx, node uint64, pos int, key uint64) (bool, error) {
	left := b.child(node, pos)
	right := b.child(node, pos+1)
	switch {
	case b.nodeN(left) > btMinKeys:
		// Replace with the predecessor and delete it recursively.
		pk, pvo, pvl := b.maxItem(left)
		_, vo, vl := b.item(node, pos)
		b.pool.Free(vo, vl)
		b.addNode(tx, node)
		b.setItem(tx, node, pos, pk, pvo, pvl)
		return b.deleteDetached(tx, left, pk)
	case b.nodeN(right) > btMinKeys:
		sk, svo, svl := b.minItem(right)
		_, vo, vl := b.item(node, pos)
		b.pool.Free(vo, vl)
		b.addNode(tx, node)
		b.setItem(tx, node, pos, sk, svo, svl)
		return b.deleteDetached(tx, right, sk)
	default:
		merged := b.mergeChildren(tx, node, pos)
		return b.deleteFrom(tx, merged, key)
	}
}

// deleteDetached removes key from a subtree whose copy now lives in the
// parent (the value buffer ownership moved), so the recursive delete must
// NOT free the value again.
func (b *BTree) deleteDetached(tx *pmdk.Tx, node uint64, key uint64) (bool, error) {
	cnt := b.nodeN(node)
	pos := 0
	for pos < cnt && b.key(node, pos) < key {
		pos++
	}
	if pos < cnt && b.key(node, pos) == key {
		if b.nodeLeaf(node) {
			b.removeItem(tx, node, pos) // value moved, not freed
			return true, nil
		}
		// The key to detach sits in an internal node: move it up via
		// its own predecessor/successor first (rare; handle by merging).
		return b.deleteInternalDetached(tx, node, pos, key)
	}
	if b.nodeLeaf(node) {
		return false, nil
	}
	child, err := b.ensureRich(tx, node, pos)
	if err != nil {
		return false, err
	}
	return b.deleteDetached(tx, child, key)
}

// deleteInternalDetached is deleteInternal for a key whose value buffer
// has been adopted by an ancestor.
func (b *BTree) deleteInternalDetached(tx *pmdk.Tx, node uint64, pos int, key uint64) (bool, error) {
	left := b.child(node, pos)
	right := b.child(node, pos+1)
	switch {
	case b.nodeN(left) > btMinKeys:
		pk, pvo, pvl := b.maxItem(left)
		b.addNode(tx, node)
		b.setItem(tx, node, pos, pk, pvo, pvl)
		return b.deleteDetached(tx, left, pk)
	case b.nodeN(right) > btMinKeys:
		sk, svo, svl := b.minItem(right)
		b.addNode(tx, node)
		b.setItem(tx, node, pos, sk, svo, svl)
		return b.deleteDetached(tx, right, sk)
	default:
		merged := b.mergeChildren(tx, node, pos)
		return b.deleteDetached(tx, merged, key)
	}
}

// maxItem / minItem find the rightmost/leftmost item of a subtree.
func (b *BTree) maxItem(n uint64) (key, vOff, vLen uint64) {
	for !b.nodeLeaf(n) {
		n = b.child(n, b.nodeN(n))
	}
	return b.item(n, b.nodeN(n)-1)
}

func (b *BTree) minItem(n uint64) (key, vOff, vLen uint64) {
	for !b.nodeLeaf(n) {
		n = b.child(n, 0)
	}
	return b.item(n, 0)
}

// ensureRich guarantees child pos of node has more than btMinKeys keys,
// borrowing from a sibling (rotate) or merging. It returns the child to
// descend into (which changes when a merge collapses slots).
func (b *BTree) ensureRich(tx *pmdk.Tx, node uint64, pos int) (uint64, error) {
	child := b.child(node, pos)
	if b.nodeN(child) > btMinKeys {
		return child, nil
	}
	if pos > 0 && b.nodeN(b.child(node, pos-1)) > btMinKeys {
		b.rotateRightB(tx, node, pos)
		return child, nil
	}
	if pos < b.nodeN(node) && b.nodeN(b.child(node, pos+1)) > btMinKeys {
		b.rotateLeftB(tx, node, pos)
		return child, nil
	}
	// Merge with a sibling.
	if pos > 0 {
		return b.mergeChildren(tx, node, pos-1), nil
	}
	return b.mergeChildren(tx, node, pos), nil
}

// rotateLeftB is btree_map_rotate_left: parent key (pos) moves down into
// child pos, the right sibling's first item moves up into the parent.
func (b *BTree) rotateLeftB(tx *pmdk.Tx, node uint64, pos int) {
	child := b.child(node, pos)
	sib := b.child(node, pos+1)
	b.addNode(tx, node)
	b.addNode(tx, child)
	if b.bugs.On(BugBTreeDoubleInsertLog) {
		// btree_map.c:367 — the rotate path logs the node again even
		// though it was already snapshotted in this transaction.
		tx.Add(node, btSize)
	}
	b.addNode(tx, sib)

	cn := b.nodeN(child)
	pk, pvo, pvl := b.item(node, pos)
	b.setItem(tx, child, cn, pk, pvo, pvl)
	if !b.nodeLeaf(child) {
		tx.Set64(child+btKids+uint64(cn+1)*8, b.child(sib, 0))
	}
	tx.Set64(child+btN, uint64(cn+1))

	sk, svo, svl := b.item(sib, 0)
	b.setItem(tx, node, pos, sk, svo, svl)

	sn := b.nodeN(sib)
	for j := 0; j < sn-1; j++ {
		k, vo, vl := b.item(sib, j+1)
		b.setItem(tx, sib, j, k, vo, vl)
	}
	if !b.nodeLeaf(sib) {
		for j := 0; j < sn; j++ {
			tx.Set64(sib+btKids+uint64(j)*8, b.child(sib, j+1))
		}
	}
	tx.Set64(sib+btN, uint64(sn-1))
}

// rotateRightB mirrors rotateLeftB with the left sibling.
func (b *BTree) rotateRightB(tx *pmdk.Tx, node uint64, pos int) {
	child := b.child(node, pos)
	sib := b.child(node, pos-1)
	b.addNode(tx, node)
	b.addNode(tx, child)
	b.addNode(tx, sib)

	// Shift child right by one.
	cn := b.nodeN(child)
	for j := cn; j > 0; j-- {
		k, vo, vl := b.item(child, j-1)
		b.setItem(tx, child, j, k, vo, vl)
	}
	if !b.nodeLeaf(child) {
		for j := cn + 1; j > 0; j-- {
			tx.Set64(child+btKids+uint64(j)*8, b.child(child, j-1))
		}
	}
	pk, pvo, pvl := b.item(node, pos-1)
	b.setItem(tx, child, 0, pk, pvo, pvl)
	if !b.nodeLeaf(child) {
		tx.Set64(child+btKids, b.child(sib, b.nodeN(sib)))
	}
	tx.Set64(child+btN, uint64(cn+1))

	sk, svo, svl := b.item(sib, b.nodeN(sib)-1)
	b.setItem(tx, node, pos-1, sk, svo, svl)
	tx.Set64(sib+btN, uint64(b.nodeN(sib)-1))
}

// mergeChildren folds parent key pos and child pos+1 into child pos,
// freeing the right child; it returns the merged node.
func (b *BTree) mergeChildren(tx *pmdk.Tx, node uint64, pos int) uint64 {
	left := b.child(node, pos)
	right := b.child(node, pos+1)
	b.addNode(tx, node)
	b.addNode(tx, left)

	ln := b.nodeN(left)
	pk, pvo, pvl := b.item(node, pos)
	b.setItem(tx, left, ln, pk, pvo, pvl)
	rn := b.nodeN(right)
	for j := 0; j < rn; j++ {
		k, vo, vl := b.item(right, j)
		b.setItem(tx, left, ln+1+j, k, vo, vl)
	}
	if !b.nodeLeaf(left) {
		for j := 0; j <= rn; j++ {
			tx.Set64(left+btKids+uint64(ln+1+j)*8, b.child(right, j))
		}
	}
	tx.Set64(left+btN, uint64(ln+1+rn))

	// Remove key pos and child pos+1 from the parent.
	pn := b.nodeN(node)
	for j := pos; j < pn-1; j++ {
		k, vo, vl := b.item(node, j+1)
		b.setItem(tx, node, j, k, vo, vl)
		tx.Set64(node+btKids+uint64(j+1)*8, b.child(node, j+2))
	}
	tx.Set64(node+btN, uint64(pn-1))
	b.pool.Free(right, btSize)
	return left
}

// Len counts the keys (test helper).
func (b *BTree) Len() int {
	n := 0
	b.Walk(func(uint64) { n++ })
	return n
}

// Validate checks the B-tree structural invariants: key ordering, key
// counts within [btMinKeys, btMaxK] (root exempt from the minimum), and
// uniform leaf depth.
func (b *BTree) Validate() (bool, string) {
	root := b.dev().Load64(b.root)
	if root == 0 {
		return true, ""
	}
	ok, reason := true, ""
	depth := -1
	var rec func(n uint64, d int, isRoot bool, lo, hi uint64, haveLo, haveHi bool)
	rec = func(n uint64, d int, isRoot bool, lo, hi uint64, haveLo, haveHi bool) {
		cnt := b.nodeN(n)
		if !isRoot && (cnt < btMinKeys || cnt > btMaxK) {
			ok, reason = false, "key count out of range"
			return
		}
		if isRoot && cnt > btMaxK {
			ok, reason = false, "root overfull"
			return
		}
		for i := 0; i < cnt; i++ {
			k := b.key(n, i)
			if i > 0 && b.key(n, i-1) >= k {
				ok, reason = false, "keys out of order"
			}
			if haveLo && k <= lo {
				ok, reason = false, "key below bound"
			}
			if haveHi && k >= hi {
				ok, reason = false, "key above bound"
			}
		}
		if b.nodeLeaf(n) {
			if depth == -1 {
				depth = d
			} else if depth != d {
				ok, reason = false, "leaves at different depths"
			}
			return
		}
		for i := 0; i <= cnt; i++ {
			cl, ch := lo, hi
			cll, chh := haveLo, haveHi
			if i > 0 {
				cl, cll = b.key(n, i-1), true
			}
			if i < cnt {
				ch, chh = b.key(n, i), true
			}
			rec(b.child(n, i), d+1, false, cl, ch, cll, chh)
		}
	}
	rec(root, 0, true, 0, 0, false, false)
	return ok, reason
}
