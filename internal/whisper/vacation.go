package whisper

import (
	"errors"

	"pmtest/internal/pmdk"
	"pmtest/internal/pmem"
)

// Vacation is the WHISPER/STAMP "vacation" analog: a travel-reservation
// system where one transaction touches several persistent tables — the
// kind of multi-object transaction WHISPER uses to stress PM systems.
//
// Layout (all in one pmdk pool):
//
//	root:      three table offsets + customer-table offset
//	resource:  {total(8), reserved(8), price(8)} per id, fixed arrays
//	customer:  head pointer of a reservation list per id
//	resnode:   {kind(8), id(8), price(8), next(8)}
//
// MakeReservation atomically checks availability, bumps the reservation
// count and links a reservation node onto the customer's list — three
// tables in one failure-atomic transaction.
type Vacation struct {
	pool  *pmdk.Pool
	check bool

	nRes   uint64 // ids per resource table
	nCust  uint64
	tables [3]uint64 // car/flight/room table offsets
	cust   uint64    // customer table offset
}

// Resource kinds.
const (
	ResCar = iota
	ResFlight
	ResRoom
	numResKinds
)

const (
	resTotal    = 0
	resReserved = 8
	resPrice    = 16
	resSize     = 24

	rnKind = 0
	rnID   = 8
	rnCost = 16
	rnNext = 24
	rnSize = 32
)

// Vacation errors.
var (
	ErrSoldOut    = errors.New("whisper: resource sold out")
	ErrBadID      = errors.New("whisper: id out of range")
	ErrNoSuchRes  = errors.New("whisper: reservation not found")
	ErrBadResKind = errors.New("whisper: unknown resource kind")
)

// NewVacation creates the reservation system with nRes ids per resource
// table (each seeded with `capacity` units) and nCust customers.
func NewVacation(dev *pmem.Device, nRes, nCust, capacity uint64) (*Vacation, error) {
	pool, err := pmdk.Create(dev, 0)
	if err != nil {
		return nil, err
	}
	v := &Vacation{pool: pool, nRes: nRes, nCust: nCust}
	root, err := pool.Root(4 * 8)
	if err != nil {
		return nil, err
	}
	for k := 0; k < numResKinds; k++ {
		off, err := pool.Alloc(nRes * resSize)
		if err != nil {
			return nil, err
		}
		pool.Zero(off, nRes*resSize)
		d := pool.Device()
		for id := uint64(0); id < nRes; id++ {
			d.Store64(off+id*resSize+resTotal, capacity)
			d.Store64(off+id*resSize+resPrice, 50+id%100)
		}
		d.PersistBarrier(off, nRes*resSize)
		v.tables[k] = off
		pool.Device().Store64(root+uint64(k)*8, off) //pmlint:ignore missedflush the error returns abandon construction; the success path hits the root barrier
	}
	custOff, err := pool.Alloc(nCust * 8)
	if err != nil {
		return nil, err
	}
	pool.Zero(custOff, nCust*8)
	v.cust = custOff
	pool.Device().Store64(root+3*8, custOff)
	pool.Device().PersistBarrier(root, 4*8)
	return v, nil
}

// OpenVacation reattaches after a crash/restart.
func OpenVacation(dev *pmem.Device, nRes, nCust uint64) (*Vacation, error) {
	pool, _, err := pmdk.Open(dev)
	if err != nil {
		return nil, err
	}
	root, err := pool.Root(4 * 8)
	if err != nil {
		return nil, err
	}
	v := &Vacation{pool: pool, nRes: nRes, nCust: nCust}
	for k := 0; k < numResKinds; k++ {
		v.tables[k] = pool.Device().Load64(root + uint64(k)*8)
	}
	v.cust = pool.Device().Load64(root + 3*8)
	return v, nil
}

// Pool exposes the backing pool.
func (v *Vacation) Pool() *pmdk.Pool { return v.pool }

// Device exposes the backing device.
func (v *Vacation) Device() *pmem.Device { return v.pool.Device() }

// SetCheckers wraps each operation in transaction checkers.
func (v *Vacation) SetCheckers(on bool) { v.check = on }

func (v *Vacation) resOff(kind int, id uint64) (uint64, error) {
	if kind < 0 || kind >= numResKinds {
		return 0, ErrBadResKind
	}
	if id >= v.nRes {
		return 0, ErrBadID
	}
	return v.tables[kind] + id*resSize, nil
}

// MakeReservation books one unit of (kind, id) for customer: resource
// count and customer list change atomically.
func (v *Vacation) MakeReservation(customer uint64, kind int, id uint64) error {
	if customer >= v.nCust {
		return ErrBadID
	}
	rOff, err := v.resOff(kind, id)
	if err != nil {
		return err
	}
	if v.check {
		txCheckerStart(v.Device())
		defer txCheckerEnd(v.Device())
	}
	return v.pool.Tx(func(tx *pmdk.Tx) error {
		d := v.Device()
		total := d.Load64(rOff + resTotal)
		reserved := d.Load64(rOff + resReserved)
		if reserved >= total {
			return ErrSoldOut
		}
		tx.Add(rOff+resReserved, 8)
		tx.Set64(rOff+resReserved, reserved+1)

		node, err := tx.Alloc(rnSize)
		if err != nil {
			return err
		}
		head := v.cust + customer*8
		tx.Set64(node+rnKind, uint64(kind))
		tx.Set64(node+rnID, id)
		tx.Set64(node+rnCost, d.Load64(rOff+resPrice))
		tx.Set64(node+rnNext, d.Load64(head))
		tx.Add(head, 8)
		tx.Set64(head, node)
		return nil
	})
}

// CancelReservation releases customer's reservation of (kind, id).
func (v *Vacation) CancelReservation(customer uint64, kind int, id uint64) error {
	if customer >= v.nCust {
		return ErrBadID
	}
	rOff, err := v.resOff(kind, id)
	if err != nil {
		return err
	}
	if v.check {
		txCheckerStart(v.Device())
		defer txCheckerEnd(v.Device())
	}
	return v.pool.Tx(func(tx *pmdk.Tx) error {
		d := v.Device()
		prevField := v.cust + customer*8
		for n := d.Load64(prevField); n != 0; n = d.Load64(prevField) {
			if int(d.Load64(n+rnKind)) == kind && d.Load64(n+rnID) == id {
				tx.Add(prevField, 8)
				tx.Set64(prevField, d.Load64(n+rnNext))
				tx.Add(rOff+resReserved, 8)
				tx.Set64(rOff+resReserved, d.Load64(rOff+resReserved)-1)
				v.pool.Free(n, rnSize)
				return nil
			}
			prevField = n + rnNext
		}
		return ErrNoSuchRes
	})
}

// Reserved returns the reservation count for (kind, id).
func (v *Vacation) Reserved(kind int, id uint64) uint64 {
	off, err := v.resOff(kind, id)
	if err != nil {
		return 0
	}
	return v.Device().Load64(off + resReserved)
}

// CustomerBill sums the customer's reservation costs and counts them.
func (v *Vacation) CustomerBill(customer uint64) (total uint64, count int) {
	d := v.Device()
	for n := d.Load64(v.cust + customer*8); n != 0; n = d.Load64(n + rnNext) {
		total += d.Load64(n + rnCost)
		count++
	}
	return
}

// TotalReserved sums reservations across all tables (consistency check:
// must equal the sum of all customers' reservation counts).
func (v *Vacation) TotalReserved() uint64 {
	d := v.Device()
	var sum uint64
	for k := 0; k < numResKinds; k++ {
		for id := uint64(0); id < v.nRes; id++ {
			sum += d.Load64(v.tables[k] + id*resSize + resReserved)
		}
	}
	return sum
}

// CustomerCount sums reservation-list lengths over all customers.
func (v *Vacation) CustomerCount() uint64 {
	var sum uint64
	for c := uint64(0); c < v.nCust; c++ {
		_, n := v.CustomerBill(c)
		sum += uint64(n)
	}
	return sum
}
