package whisper

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pmtest/internal/core"
	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

func TestRBTreeDeleteBasic(t *testing.T) {
	r, _ := NewRBTree(pmem.New(devSize, nil), nil)
	for i := uint64(0); i < 10; i++ {
		r.Insert(i, []byte{byte(i)})
	}
	ok, err := r.Delete(5)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, found := r.Get(5); found {
		t.Fatal("deleted key present")
	}
	if valid, why := r.Validate(); !valid {
		t.Fatalf("invariants broken: %s", why)
	}
	if r.Len() != 9 {
		t.Fatalf("Len = %d", r.Len())
	}
	if ok, _ := r.Delete(5); ok {
		t.Fatal("double delete succeeded")
	}
}

func TestRBTreeDeleteAll(t *testing.T) {
	r, _ := NewRBTree(pmem.New(devSize, nil), nil)
	const n = 64
	for i := uint64(0); i < n; i++ {
		r.Insert(i, []byte{byte(i)})
	}
	order := rand.New(rand.NewSource(3)).Perm(n)
	for _, k := range order {
		ok, err := r.Delete(uint64(k))
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = %v, %v", k, ok, err)
		}
		if valid, why := r.Validate(); !valid {
			t.Fatalf("after Delete(%d): %s", k, why)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", r.Len())
	}
}

// TestQuickRBTreeInsertDelete: random mixed workload against a map model
// with invariant validation at every step, plus a durable reopen check.
func TestQuickRBTreeInsertDelete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := pmem.New(devSize, nil)
		r, err := NewRBTree(dev, nil)
		if err != nil {
			return false
		}
		model := map[uint64]byte{}
		for i := 0; i < 150; i++ {
			k := uint64(rng.Intn(40))
			if rng.Intn(3) == 0 {
				ok, err := r.Delete(k)
				if err != nil {
					return false
				}
				if _, in := model[k]; in != ok {
					return false
				}
				delete(model, k)
			} else {
				v := byte(rng.Intn(256))
				if err := r.Insert(k, []byte{v}); err != nil {
					return false
				}
				model[k] = v
			}
			if valid, _ := r.Validate(); !valid {
				return false
			}
		}
		for k, v := range model {
			got, ok := r.Get(k)
			if !ok || got[0] != v {
				return false
			}
		}
		if r.Len() != len(model) {
			return false
		}
		var keys []uint64
		r.Walk(func(k uint64) { keys = append(keys, k) })
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			return false
		}
		// Durable reopen.
		r2, err := OpenRBTree(pmem.FromImage(dev.Image(), nil))
		if err != nil {
			return false
		}
		for k, v := range model {
			got, ok := r2.Get(k)
			if !ok || got[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestRBTreeDeleteCheckedClean: the multi-rotation delete paths produce
// no findings under full instrumentation.
func TestRBTreeDeleteCheckedClean(t *testing.T) {
	var ops []trace.Op
	r, _ := NewRBTree(pmem.New(devSize, recorder{&ops}), nil)
	r.SetCheckers(true)
	for i := uint64(0); i < 40; i++ {
		r.Insert(i, []byte{byte(i)})
	}
	for i := uint64(0); i < 40; i += 3 {
		ops = ops[:0]
		if _, err := r.Delete(i); err != nil {
			t.Fatal(err)
		}
		rep := core.CheckTrace(core.X86{}, &trace.Trace{Ops: ops})
		if !rep.Clean() {
			t.Fatalf("clean delete flagged: %s", rep.Summary())
		}
	}
	if valid, why := r.Validate(); !valid {
		t.Fatal(why)
	}
}

// TestRBTreeDeleteCrashConsistent: committed deletes survive any crash.
func TestRBTreeDeleteCrashConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	dev := pmem.New(devSize, nil)
	r, _ := NewRBTree(dev, nil)
	for i := uint64(0); i < 30; i++ {
		r.Insert(i, []byte{byte(i)})
	}
	for i := uint64(0); i < 15; i++ {
		if _, err := r.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 10; trial++ {
		img := dev.SampleCrash(rng, pmem.CrashOptions{})
		r2, err := OpenRBTree(pmem.FromImage(img, nil))
		if err != nil {
			t.Fatal(err)
		}
		if valid, why := r2.Validate(); !valid {
			t.Fatalf("trial %d: invariants after crash: %s", trial, why)
		}
		for i := uint64(0); i < 15; i++ {
			if _, found := r2.Get(i); found {
				t.Fatalf("trial %d: deleted key %d resurrected", trial, i)
			}
		}
		for i := uint64(15); i < 30; i++ {
			if _, found := r2.Get(i); !found {
				t.Fatalf("trial %d: surviving key %d lost", trial, i)
			}
		}
	}
}
