package whisper

import (
	"errors"

	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

// HashmapLL is the WHISPER "HashMap (w/o TX)" microbenchmark: a hashmap
// built directly on the low-level primitives (write, clwb, sfence) with a
// per-slot backup area — the undo-slot idiom of paper Fig. 1a. It is the
// most PM-operation-intensive workload, which is why its testing overhead
// is the highest in Fig. 10.
//
// Layout: header {magic, nSlots} then an array of fixed slots:
//
//	0   valid flag (8)
//	8   key (8)
//	16  value length (8)
//	24  value (valCap bytes)
//
// plus one backup slot (same layout, with its own valid flag) used to
// make updates of existing keys failure-atomic:
//
//	backup.val = slot contents; backup.valid = 1; persist_barrier;
//	slot = new contents; persist_barrier; backup.valid = 0; persist_barrier.
//
// Recovery: if backup.valid == 1, the slot it names is restored.
type HashmapLL struct {
	dev    *pmem.Device
	nSlots uint64
	valCap uint64
	bugs   BugSet
	check  bool
}

const (
	llMagicOff  = 0
	llNSlotsOff = 8
	llValCapOff = 16
	llBackupOff = 64 // backup slot (header area)
	llMagic     = 0x484D4C4C2D474F21

	slotValid = 0
	slotKey   = 8
	slotVLen  = 16
	slotData  = 24
)

// Named injection points (Fig. 1a's missing persist_barriers and the
// low-level writeback/performance rows of Table 5).
const (
	BugHMLLSkipBackupBarrier = "hashmap-ll-skip-backup-barrier" // Fig. 1a: no barrier between backup and update
	BugHMLLSkipUpdateFlush   = "hashmap-ll-skip-update-flush"   // slot update never written back
	BugHMLLSkipUpdateFence   = "hashmap-ll-skip-update-fence"   // slot update flushed but never fenced
	BugHMLLDoubleSlotFlush   = "hashmap-ll-double-slot-flush"   // slot flushed twice
	BugHMLLFlushWrongSlot    = "hashmap-ll-flush-wrong-slot"    // unmodified neighbour slot flushed
	BugHMLLValidBeforeValue  = "hashmap-ll-valid-before-value"  // valid flag persisted before the value
)

var errHMLLFull = errors.New("whisper: hashmap_ll full")

// NewHashmapLL creates a low-level hashmap with nSlots open-addressed
// slots holding values up to valCap bytes.
func NewHashmapLL(dev *pmem.Device, nSlots, valCap uint64, bugs BugSet) (*HashmapLL, error) {
	if nSlots == 0 {
		nSlots = 4096
	}
	if valCap == 0 {
		valCap = 4096
	}
	h := &HashmapLL{dev: dev, nSlots: nSlots, valCap: valCap, bugs: bugs}
	need := h.slotOff(nSlots)
	if dev.Size() < need {
		return nil, errors.New("whisper: device too small for hashmap_ll")
	}
	dev.Store64(llNSlotsOff, nSlots)
	dev.Store64(llValCapOff, valCap)
	dev.PersistBarrier(0, 64)
	dev.Store64(llMagicOff, llMagic)
	dev.PersistBarrier(llMagicOff, 8)
	return h, nil
}

// OpenHashmapLL reattaches to a formatted device, restoring an
// interrupted update from the backup slot.
func OpenHashmapLL(dev *pmem.Device) (*HashmapLL, error) {
	if dev.Load64(llMagicOff) != llMagic {
		return nil, errors.New("whisper: no hashmap_ll on device")
	}
	h := &HashmapLL{
		dev:    dev,
		nSlots: dev.Load64(llNSlotsOff),
		valCap: dev.Load64(llValCapOff),
	}
	h.recover()
	return h, nil
}

func (h *HashmapLL) slotSize() uint64 { return alignLine(slotData + h.valCap) }

func (h *HashmapLL) slotOff(i uint64) uint64 {
	base := alignLine(llBackupOff + h.slotSize())
	return base + i*h.slotSize()
}

func (h *HashmapLL) backupOff() uint64 { return llBackupOff }

func (h *HashmapLL) recover() {
	bk := h.backupOff()
	if h.dev.Load64(bk+slotValid) != 1 {
		return
	}
	// The backup's key field holds the index of the slot being updated;
	// updates only change vlen+value (key and valid are immutable once a
	// slot is filled), so that is all the backup preserves.
	idx := h.dev.Load64(bk + slotKey)
	slot := h.slotOff(idx)
	data := h.dev.LoadBytes(bk+slotVLen, 8+h.valCap)
	h.dev.Store(slot+slotVLen, data)
	h.dev.PersistBarrier(slot+slotVLen, 8+h.valCap)
	h.dev.Store64(bk+slotValid, 0)
	h.dev.PersistBarrier(bk+slotValid, 8)
}

// Name implements Store.
func (h *HashmapLL) Name() string { return "HashMap (w/o TX)" }

// Device implements Store.
func (h *HashmapLL) Device() *pmem.Device { return h.dev }

// SetCheckers implements Checkered: low-level checkers (isOrderedBefore +
// isPersist) are emitted around each insert, as in the paper's evaluation
// of the non-transactional workload (§6.3: 12 isPersist and 6
// isOrderedBefore checkers across the low-level programs).
func (h *HashmapLL) SetCheckers(on bool) { h.check = on }

// Insert adds or updates key→val. Probing skips tombstones; a fresh
// insert reuses the first tombstone on its probe path.
func (h *HashmapLL) Insert(key uint64, val []byte) error {
	if uint64(len(val)) > h.valCap {
		return errors.New("whisper: value too large")
	}
	slot, existing, ok := h.insertProbe(key)
	if !ok {
		return errHMLLFull
	}
	if existing {
		base := h.slotOff(0)
		idx := (slot - base) / h.slotSize()
		return h.update(idx, slot, val)
	}
	return h.fill(slot, key, val)
}

// fill writes a fresh slot: value persists strictly before the valid
// flag, so a crash never exposes a half-written entry.
func (h *HashmapLL) fill(slot, key uint64, val []byte) error {
	dev := h.dev
	if h.bugs.On(BugHMLLValidBeforeValue) {
		// Ordering bug: the flag is made durable before the value.
		dev.Store64(slot+slotValid, 1)
		dev.Store64(slot+slotKey, key)
		dev.PersistBarrier(slot, 24)
		dev.Store64(slot+slotVLen, uint64(len(val)))
		dev.Store(slot+slotData, val)
		dev.PersistBarrier(slot+slotVLen, 8+uint64(len(val)))
	} else {
		dev.Store64(slot+slotKey, key)
		dev.Store64(slot+slotVLen, uint64(len(val)))
		dev.Store(slot+slotData, val)
		if !h.bugs.On(BugHMLLSkipUpdateFlush) {
			dev.CLWB(slot+slotKey, 16+uint64(len(val)))
			if h.bugs.On(BugHMLLDoubleSlotFlush) {
				dev.CLWB(slot+slotKey, 16+uint64(len(val))) //pmlint:ignore doubleflush BugHMLLDoubleSlotFlush is an injected bug
			}
		}
		if h.bugs.On(BugHMLLFlushWrongSlot) {
			next := h.slotOff((slot/h.slotSize() + 1) % h.nSlots)
			dev.CLWB(next, h.slotSize())
		}
		if !h.bugs.On(BugHMLLSkipUpdateFence) {
			dev.SFence()
		}
		dev.Store64(slot+slotValid, 1)
		dev.CLWB(slot+slotValid, 8)
		dev.SFence()
	}
	if h.check {
		// The value must persist strictly before the valid flag, and the
		// flag must be durable when Insert returns.
		dev.RecordOp(trace.Op{
			Kind: trace.KindIsOrderedBefore,
			Addr: slot + slotKey, Size: 16 + uint64(len(val)),
			Addr2: slot + slotValid, Size2: 8,
		}, 1)
		dev.RecordOp(trace.Op{Kind: trace.KindIsPersist, Addr: slot + slotValid, Size: 8}, 1)
		dev.RecordOp(trace.Op{Kind: trace.KindIsPersist,
			Addr: slot + slotData, Size: uint64(len(val))}, 1)
	}
	return nil
}

// update overwrites an existing slot's value using the backup slot
// (Fig. 1a's undo idiom).
//
//pmlint:ignore missedflush BugHMLLSkipUpdateFlush deliberately omits the in-place writeback
func (h *HashmapLL) update(idx, slot uint64, val []byte) error {
	dev := h.dev
	bk := h.backupOff()
	// Backup the old vlen+value, persist it, THEN publish it with the
	// valid flag: the flag must never be durable before the content.
	old := dev.LoadBytes(slot+slotVLen, 8+h.valCap)
	dev.Store(bk+slotVLen, old)
	dev.Store64(bk+slotKey, idx)
	if !h.bugs.On(BugHMLLSkipBackupBarrier) {
		// Fig. 1a: the barrier right after creating the backup copy —
		// the one the buggy example omits.
		dev.PersistBarrier(bk+slotKey, 16+h.valCap)
	}
	dev.Store64(bk+slotValid, 1)
	dev.PersistBarrier(bk+slotValid, 8)
	if h.check {
		// Fig. 1a's invariant: the backup content must persist strictly
		// before its valid flag. This checker sits between the publish
		// and the in-place update, exactly where the paper places it.
		dev.RecordOp(trace.Op{
			Kind: trace.KindIsOrderedBefore,
			Addr: bk + slotKey, Size: 16 + h.valCap,
			Addr2: bk + slotValid, Size2: 8,
		}, 1)
	}
	// In-place update.
	dev.Store64(slot+slotVLen, uint64(len(val)))
	dev.Store(slot+slotData, val)
	if !h.bugs.On(BugHMLLSkipUpdateFlush) {
		dev.CLWB(slot+slotVLen, 8+uint64(len(val)))
	}
	if !h.bugs.On(BugHMLLSkipUpdateFence) {
		dev.SFence()
	}
	// Invalidate the backup.
	dev.Store64(bk+slotValid, 0)
	dev.CLWB(bk+slotValid, 8)
	dev.SFence()
	if h.check {
		dev.RecordOp(trace.Op{
			Kind: trace.KindIsOrderedBefore,
			Addr: slot + slotVLen, Size: 8 + uint64(len(val)),
			Addr2: bk + slotValid, Size2: 8,
		}, 1)
		dev.RecordOp(trace.Op{Kind: trace.KindIsPersist,
			Addr: slot + slotData, Size: uint64(len(val))}, 1)
	}
	return nil
}

// Get implements Store. Lookups probe through tombstones.
func (h *HashmapLL) Get(key uint64) ([]byte, bool) {
	start := mix(key) % h.nSlots
	for probe := uint64(0); probe < h.nSlots; probe++ {
		i := (start + probe) % h.nSlots
		slot := h.slotOff(i)
		switch h.dev.Load64(slot + slotValid) {
		case 1:
			if h.dev.Load64(slot+slotKey) == key {
				n := h.dev.Load64(slot + slotVLen)
				return h.dev.LoadBytes(slot+slotData, n), true
			}
		case slotTombstone:
			continue
		default:
			return nil, false
		}
	}
	return nil, false
}

// SpaceFor returns the device size needed for the given geometry.
func HashmapLLSpace(nSlots, valCap uint64) uint64 {
	h := &HashmapLL{nSlots: nSlots, valCap: valCap}
	return h.slotOff(nSlots) + pmem.LineSize
}

func alignLine(v uint64) uint64 { return (v + pmem.LineSize - 1) &^ (pmem.LineSize - 1) }
