package core

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pmtest/internal/trace"
)

// Config selects the sharded streaming checker and its epoch GC. The zero
// value is today's behavior: one serial State per trace, no GC.
type Config struct {
	// Shards is the number of address stripes checked concurrently.
	// <= 1 keeps the single-state serial path.
	Shards int
	// ChunkBits is log2 of the minimum stripe chunk size: addresses are
	// assigned to stripes by (addr >> bits) % Shards, so consecutive
	// chunks of 1<<bits bytes rotate across stripes. Default 12 (4 KiB
	// pages). Splitting one operation's range across stripes would change
	// segment boundaries and with them diagnostic bytes, so the planner
	// coarsens the chunk size per trace until no op spans a chunk
	// (stripe state is reset per trace, making the geometry free to
	// vary); only a range wider than maxChunkBits forces the whole trace
	// onto the serial path.
	ChunkBits uint
	// EpochGC retires shadow-memory segments whose persist and flush
	// intervals both closed at least GCLag epochs before the current one,
	// bounding live intervals over long streaming runs.
	EpochGC bool
	// GCLag is the retirement age in epochs; default 2. A larger lag
	// keeps more history for late flush/order checks of old ranges.
	GCLag uint64
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.ChunkBits == 0 {
		c.ChunkBits = 12
	}
	if c.GCLag == 0 {
		c.GCLag = 2
	}
	return c
}

// Sharded reports whether the config asks for the striped path.
func (c Config) Sharded() bool { return c.Shards > 1 }

// active reports whether the config changes anything relative to the
// plain pooled serial path (striping or GC).
func (c Config) active() bool { return c.Shards > 1 || c.EpochGC }

// CheckStats is per-trace resource accounting from the configured
// checker: shadow-memory pressure and GC work, plus per-stripe checking
// time when timing is enabled.
type CheckStats struct {
	// Sharded reports whether the stripe path actually ran; false means
	// the trace took the serial path (Shards<=1, a custom rule set, or a
	// range crossing a chunk boundary forced the fallback).
	Sharded bool
	// PeakIntervals is the high-water mark of live shadow-memory
	// segments, sampled at every fence (summed across stripes).
	PeakIntervals int
	// RetiredIntervals counts segments retired by epoch GC.
	RetiredIntervals uint64
	// StripeDurs is per-stripe time spent applying ops, non-nil only
	// when the checker's Timed flag is set. The slice is reused across
	// traces; observers must copy it.
	StripeDurs []time.Duration
}

// maxChunkBits caps per-trace chunk coarsening at 16 MiB chunks: an op
// range that straddles even that line (a >16 MiB single object, or a
// wildly misaligned giant range) sends the trace to the serial path.
const maxChunkBits = 24

// shardable reports whether the rule set is a built-in whose
// isOrderedBefore flavor the stripe coordinator can replicate for
// cross-stripe checks. Custom rule sets check serially: their Apply may
// carry semantics the router cannot see.
func shardable(rules RuleSet) (byStart, ok bool) {
	switch rules.(type) {
	case X86, ARM:
		return false, true
	case HOPS, Epoch:
		return true, true
	}
	return false, false
}

// gcRetiredTotal is the process-global count of GC-retired shadow
// segments, exported through ResourceStats.
var gcRetiredTotal atomic.Uint64

// stripeCmd asks a stripe worker to apply its op-index list entries in
// [from, to).
type stripeCmd struct {
	from, to int32
}

// cut marks a cross-stripe isOrderedBefore op: every stripe must drain
// its list up to pos before the coordinator can read two stripes' shadow
// memories consistently.
type cut struct {
	op  int32
	pos []int32 // per-stripe list position at the cut
}

// ShardedChecker checks traces against address-striped shadow memory:
// each stripe owns the interval trees for its address chunks and applies
// its ops on a dedicated persistent worker goroutine, while trace-global
// ops (fences, transaction boundaries, scope control) are broadcast to
// every stripe so each replays the same epoch and transaction structure.
// Per-stripe diagnostics are merged deterministically back into the
// serial emission order, so reports are byte-identical to CheckTrace.
//
// A checker is NOT safe for concurrent Check calls; each engine worker
// owns one. Close releases the stripe goroutines.
type ShardedChecker struct {
	cfg       Config
	rules     RuleSet
	byStart   bool
	striped   bool // Shards > 1 and rules shardable
	chunkBits uint // effective bits for the current trace (>= cfg.ChunkBits)

	// Timed enables per-stripe duration accounting in CheckStats. Set it
	// before the first Check; it must not be flipped concurrently.
	Timed bool

	states []*State
	serial *State // fallback / serial-config state, lazily created
	coord  *State // holds cross-stripe isOrderedBefore diagnostics

	ops        []trace.Op // current trace, visible to workers via cmds
	lists      [][]int32  // per-stripe op-index lists, reused
	cuts       []cut
	starts     []int32
	ends       []int32
	stopped    []bool
	trackedAll int

	stripeDurs []time.Duration
	pending    []atomic.Int64
	cmds       []chan stripeCmd
	wg         sync.WaitGroup
	panicked   atomic.Bool
}

// NewShardedChecker builds a checker for the given rules and config and
// starts one worker goroutine per stripe (none when the config or rule
// set forces the serial path).
func NewShardedChecker(rules RuleSet, cfg Config) *ShardedChecker {
	cfg = cfg.withDefaults()
	byStart, ok := shardable(rules)
	c := &ShardedChecker{
		cfg:     cfg,
		rules:   rules,
		byStart: byStart,
		striped: ok && cfg.Shards > 1,
	}
	if !c.striped {
		return c
	}
	n := cfg.Shards
	c.states = make([]*State, n)
	c.coord = &State{}
	c.lists = make([][]int32, n)
	c.starts = make([]int32, n)
	c.ends = make([]int32, n)
	c.stopped = make([]bool, n)
	c.stripeDurs = make([]time.Duration, n)
	c.pending = make([]atomic.Int64, n)
	c.cmds = make([]chan stripeCmd, n)
	for i := 0; i < n; i++ {
		c.states[i] = NewState()
		c.cmds[i] = make(chan stripeCmd)
		go c.stripeWorker(i)
	}
	return c
}

// Close stops the stripe workers. The checker must not be used after.
func (c *ShardedChecker) Close() {
	for _, ch := range c.cmds {
		close(ch)
	}
}

// StripeDepths returns the number of ops currently assigned to each
// stripe worker — the live imbalance gauge for the observability plane.
// Nil when the checker runs serially.
func (c *ShardedChecker) StripeDepths() []int64 {
	if !c.striped {
		return nil
	}
	out := make([]int64, len(c.pending))
	c.AddStripeDepths(out)
	return out
}

// AddStripeDepths accumulates the live per-stripe depths into dst (which
// must have at least Shards entries); engines sum across their workers.
func (c *ShardedChecker) AddStripeDepths(dst []int64) {
	for i := range c.pending {
		dst[i] += c.pending[i].Load()
	}
}

// stripeOf maps an address range to its owning stripe under the current
// trace's chunk geometry. ok is false when the range still crosses a
// chunk boundary, which cannot happen after plan's coarsening pass.
func (c *ShardedChecker) stripeOf(addr, size uint64) (int, bool) {
	lo := addr >> c.chunkBits
	hi := lo
	if size > 0 {
		hi = (addr + size - 1) >> c.chunkBits
	}
	if hi != lo {
		return 0, false
	}
	return int(lo % uint64(len(c.states))), true
}

// spanBits returns the smallest chunk-bit width under which [addr,
// addr+size) fits inside one chunk: the bit length of addr XOR (end-1),
// i.e. the position of the highest bit where the two endpoints differ.
func spanBits(addr, size uint64) uint {
	if size == 0 {
		return 0
	}
	return uint(bits.Len64(addr ^ (addr + size - 1)))
}

// addCut records a phase boundary at op index opIdx, snapshotting every
// stripe's current list length. Cut entries (and their pos slices) are
// reused across traces.
func (c *ShardedChecker) addCut(opIdx int32) {
	n := len(c.cuts)
	if n < cap(c.cuts) {
		c.cuts = c.cuts[:n+1]
	} else {
		c.cuts = append(c.cuts, cut{})
	}
	cc := &c.cuts[n]
	cc.op = opIdx
	if cc.pos == nil {
		cc.pos = make([]int32, len(c.lists))
	}
	for i, l := range c.lists {
		cc.pos[i] = int32(len(l))
	}
}

// plan routes every op of the trace: addressed ops (writes, flushes,
// log backups, isPersist) go to their owning stripe; trace-global ops
// are broadcast to all stripes; a cross-stripe isOrderedBefore becomes a
// phase cut handled by the coordinator. A pre-pass coarsens the chunk
// size until no op's range spans a chunk — real workloads allocate the
// occasional object across a page line, and splitting such a range
// across stripes would change segment boundaries and with them
// diagnostic bytes. plan returns false only when an op spans more than
// 1<<maxChunkBits bytes, which sends the whole trace to the serial path.
func (c *ShardedChecker) plan(ops []trace.Op) bool {
	c.chunkBits = c.cfg.ChunkBits
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case trace.KindWrite, trace.KindWriteNT, trace.KindFlush,
			trace.KindTxAdd, trace.KindIsPersist:
			if b := spanBits(op.Addr, op.Size); b > c.chunkBits {
				c.chunkBits = b
			}
		case trace.KindIsOrderedBefore:
			if b := spanBits(op.Addr, op.Size); b > c.chunkBits {
				c.chunkBits = b
			}
			if b := spanBits(op.Addr2, op.Size2); b > c.chunkBits {
				c.chunkBits = b
			}
		}
	}
	if c.chunkBits > maxChunkBits {
		return false
	}
	for i := range c.lists {
		c.lists[i] = c.lists[i][:0]
	}
	c.cuts = c.cuts[:0]
	c.trackedAll = 0
	for i := range ops {
		op := &ops[i]
		if !op.Kind.IsChecker() {
			c.trackedAll++
		}
		switch op.Kind {
		case trace.KindWrite, trace.KindWriteNT, trace.KindFlush,
			trace.KindTxAdd, trace.KindIsPersist:
			st, ok := c.stripeOf(op.Addr, op.Size)
			if !ok {
				return false
			}
			c.lists[st] = append(c.lists[st], int32(i))
		case trace.KindIsOrderedBefore:
			sa, okA := c.stripeOf(op.Addr, op.Size)
			sb, okB := c.stripeOf(op.Addr2, op.Size2)
			if !okA || !okB {
				return false
			}
			if sa == sb {
				c.lists[sa] = append(c.lists[sa], int32(i))
			} else {
				c.addCut(int32(i))
			}
		default:
			// Fences, transaction boundaries, checker scopes, exclude /
			// include: every stripe replays them, keeping epoch counters,
			// nesting depth and exclusion scope identical everywhere.
			for s := range c.lists {
				c.lists[s] = append(c.lists[s], int32(i))
			}
		}
	}
	return true
}

// Check runs one trace through the configured checker and returns its
// report plus resource stats. Reports are byte-identical to
// CheckTrace(rules, t) regardless of path taken.
func (c *ShardedChecker) Check(t *trace.Trace, excludes []Range) (Report, CheckStats) {
	if c.striped && c.plan(t.Ops) {
		if rep, stats, ok := c.checkStriped(t, excludes); ok {
			return rep, stats
		}
	}
	return c.checkSerial(t, excludes)
}

// checkStriped runs the stripe path. ok is false when any stripe (or the
// coordinator itself) panicked; the caller then re-checks serially, and
// the serial recovery produces the canonical CodeCheckerPanic report.
// The stripe workers always reach wg.Done (their recover is inside the
// per-command handler), so a bailed-out trace leaves no stuck state.
func (c *ShardedChecker) checkStriped(t *trace.Trace, excludes []Range) (rep Report, stats CheckStats, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
		}
	}()
	c.ops = t.Ops
	for i, s := range c.states {
		s.Reset()
		s.muted = i != 0
		s.gcOn = c.cfg.EpochGC
		s.gcLag = c.cfg.GCLag
		for _, r := range excludes {
			s.Excluded.Set(r.Addr, r.Addr+r.Size, struct{}{})
		}
		c.stopped[i] = false
		c.starts[i] = 0
		c.ends[i] = int32(len(c.lists[i]))
		if c.Timed {
			c.stripeDurs[i] = 0
		}
	}
	c.coord.diags = nil
	c.coord.opIndex = 0
	c.panicked.Store(false)

	for ci := range c.cuts {
		cu := &c.cuts[ci]
		c.runPhase(c.starts, cu.pos)
		if c.panicked.Load() {
			return rep, stats, false
		}
		c.coord.opIndex = int(cu.op)
		c.crossCheck(t.Ops[cu.op])
		copy(c.starts, cu.pos)
	}
	c.runPhase(c.starts, c.ends)
	if c.panicked.Load() {
		return rep, stats, false
	}

	rep = c.mergeReport(t)
	stats.Sharded = true
	for _, s := range c.states {
		if n := s.Mem.Len(); n > s.peakIntervals {
			s.peakIntervals = n
		}
		stats.PeakIntervals += s.peakIntervals
		stats.RetiredIntervals += s.gcRetired
	}
	if c.Timed {
		stats.StripeDurs = c.stripeDurs
	}
	gcRetiredTotal.Add(stats.RetiredIntervals)
	return rep, stats, true
}

// checkSerial is the single-state path: Shards<=1 configs, custom rule
// sets, chunk-crossing traces, and panic recovery all land here. Epoch
// GC still applies when configured.
func (c *ShardedChecker) checkSerial(t *trace.Trace, excludes []Range) (Report, CheckStats) {
	if c.serial == nil {
		c.serial = NewState()
	}
	s := c.serial
	s.Reset()
	s.gcOn = c.cfg.EpochGC
	s.gcLag = c.cfg.GCLag
	rep := CheckTraceInto(s, c.rules, t, excludes)
	if n := s.Mem.Len(); n > s.peakIntervals {
		s.peakIntervals = n
	}
	stats := CheckStats{PeakIntervals: s.peakIntervals, RetiredIntervals: s.gcRetired}
	gcRetiredTotal.Add(s.gcRetired)
	return rep, stats
}

// runPhase dispatches each stripe's list slice [from[i], to[i]) to its
// worker and waits for all of them — a barrier, entered only at trace
// start and at cross-stripe cuts.
func (c *ShardedChecker) runPhase(from, to []int32) {
	n := 0
	for i := range c.states {
		if from[i] < to[i] && !c.stopped[i] {
			n++
		}
	}
	if n == 0 {
		return
	}
	c.wg.Add(n)
	for i := range c.states {
		if from[i] < to[i] && !c.stopped[i] {
			c.pending[i].Store(int64(to[i] - from[i]))
			c.cmds[i] <- stripeCmd{from: from[i], to: to[i]}
		}
	}
	c.wg.Wait()
}

func (c *ShardedChecker) stripeWorker(i int) {
	s := c.states[i]
	for cmd := range c.cmds[i] {
		c.runStripe(i, s, cmd)
		c.pending[i].Store(0)
		c.wg.Done()
	}
}

func (c *ShardedChecker) runStripe(i int, s *State, cmd stripeCmd) {
	defer func() {
		if r := recover(); r != nil {
			c.panicked.Store(true)
		}
	}()
	var t0 time.Time
	if c.Timed {
		t0 = time.Now()
	}
	ops := c.ops
	for _, idx := range c.lists[i][cmd.from:cmd.to] {
		s.opIndex = int(idx)
		c.rules.Apply(s, ops[idx])
		if len(s.diags) >= maxDiagsPerTrace {
			// Bound per-stripe memory. The serial truncation point can
			// never precede this op (see mergeReport), so the merged
			// output is unaffected by stopping here.
			c.stopped[i] = true
			break
		}
	}
	if c.Timed {
		c.stripeDurs[i] += time.Since(t0)
	}
}

// crossCheck validates an isOrderedBefore whose operands live on
// different stripes. All stripes are quiesced at the cut, so reading two
// shadow memories from the coordinator is race-free; the diagnostic (at
// most one) lands on the coordinator's diag list and is merged by op
// index like any other.
func (c *ShardedChecker) crossCheck(op trace.Op) {
	sa, _ := c.stripeOf(op.Addr, op.Size)
	sb, _ := c.stripeOf(op.Addr2, op.Size2)
	co := c.coord
	co.segScratch = c.states[sa].persistIntervals(co.segScratch[:0], op.Addr, op.Addr+op.Size)
	co.segScratch2 = c.states[sb].persistIntervals(co.segScratch2[:0], op.Addr2, op.Addr2+op.Size2)
	co.orderedBeforeSegs(op, c.byStart, co.segScratch, co.segScratch2)
}

// trackedThrough counts non-checker ops in ops[:j+1].
func trackedThrough(ops []trace.Op, j int) int {
	n := 0
	for i := 0; i <= j && i < len(ops); i++ {
		if !ops[i].Kind.IsChecker() {
			n++
		}
	}
	return n
}

// txCheckActiveAfter replays only the checker-scope kinds of ops[:j+1]
// to reconstruct TxCheckActive as the serial checker would have left it
// at the truncation point. Scope state is a pure function of the kind
// sequence: START sets it, END clears it (an unmatched END leaves it
// clear either way).
func txCheckActiveAfter(ops []trace.Op, j int) bool {
	active := false
	for i := 0; i <= j && i < len(ops); i++ {
		switch ops[i].Kind {
		case trace.KindTxCheckerStart:
			active = true
		case trace.KindTxCheckerEnd:
			active = false
		}
	}
	return active
}

// openCheckerWarn is the trailing diagnostic CheckTraceInto emits when a
// trace ends (or truncates) inside an open TX_CHECKER scope.
func openCheckerWarn(opIndex int) Diagnostic {
	return Diagnostic{
		Severity: SeverityWarn,
		Code:     CodeUnbalancedTx,
		Message:  "trace ended with an open TX_CHECKER scope",
		Site:     "?",
		OpIndex:  opIndex,
	}
}

// mergeReport reassembles per-stripe diagnostics into the exact sequence
// the serial checker emits. Every addressed op reports from exactly one
// stripe; broadcast ops report only from stripe 0 (others are muted)
// except TX_CHECKER_END, whose per-stripe injected checks carry the
// written segment's address as their sort key — a stable sort by
// (OpIndex, sortKey) therefore reproduces the serial address-order walk.
// The diagnostic cap and the trailing open-scope warning are
// reconstructed from the merged sequence.
func (c *ShardedChecker) mergeReport(t *trace.Trace) Report {
	ops := t.Ops
	lastOp := len(ops) - 1
	if lastOp < 0 {
		lastOp = 0
	}
	total := len(c.coord.diags)
	for _, s := range c.states {
		total += len(s.diags)
	}
	rep := Report{TraceID: t.ID, Thread: t.Thread, Ops: len(ops), TrackedOps: c.trackedAll}
	if total == 0 {
		// Clean fast path: no merge, no allocation.
		if c.states[0].TxCheckActive {
			rep.Diags = []Diagnostic{openCheckerWarn(lastOp)}
		}
		return rep
	}
	merged := make([]Diagnostic, 0, total+2)
	for _, s := range c.states {
		merged = append(merged, s.diags...)
	}
	merged = append(merged, c.coord.diags...)
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].OpIndex != merged[j].OpIndex {
			return merged[i].OpIndex < merged[j].OpIndex
		}
		return merged[i].sortKey < merged[j].sortKey
	})
	if total >= maxDiagsPerTrace {
		// The serial checker truncates after the first op j whose
		// cumulative diagnostic count reaches the cap — j is the op index
		// of the cap-th merged diagnostic. Each stripe is provably
		// complete through op j: its own count before j is bounded by the
		// serial cumulative count, which is below the cap there.
		j := merged[maxDiagsPerTrace-1].OpIndex
		keep := len(merged)
		for keep > 0 && merged[keep-1].OpIndex > j {
			keep--
		}
		merged = merged[:keep]
		merged = append(merged, Diagnostic{
			Severity: SeverityInfo,
			Code:     CodeTruncated,
			Message: fmt.Sprintf("diagnostics capped at %d; %d of %d ops checked",
				maxDiagsPerTrace, j+1, len(ops)),
			Site:    "?",
			OpIndex: j,
		})
		if txCheckActiveAfter(ops, j) {
			merged = append(merged, openCheckerWarn(j))
		}
		rep.TrackedOps = trackedThrough(ops, j)
		rep.Diags = merged
		return rep
	}
	if c.states[0].TxCheckActive {
		merged = append(merged, openCheckerWarn(lastOp))
	}
	rep.Diags = merged
	return rep
}

// CheckTraceCfg checks one trace under an explicit sharding/GC config.
// It is the one-shot form used by golden-equivalence tests; engines and
// benchmarks hold a persistent ShardedChecker instead.
func CheckTraceCfg(rules RuleSet, t *trace.Trace, excludes []Range, cfg Config) (Report, CheckStats) {
	c := NewShardedChecker(rules, cfg)
	defer c.Close()
	return c.Check(t, excludes)
}
