package core

import (
	"testing"

	"pmtest/internal/trace"
)

// FuzzCheckTrace: arbitrary operation sequences — including nonsense
// nesting, zero sizes and overlapping ranges — must never panic any rule
// set, and diagnostics must stay anchored to valid op indexes.
func FuzzCheckTrace(f *testing.F) {
	f.Add([]byte{1, 3, 4, 1, 10})         // write, flush, fence, write, isPersist-ish
	f.Add([]byte{7, 9, 1, 8, 12, 13})     // tx nonsense
	f.Add([]byte{14, 1, 15, 1, 11, 2, 5}) // exclude/include/orderedBefore
	f.Fuzz(func(t *testing.T, data []byte) {
		var ops []trace.Op
		for i, b := range data {
			kind := trace.Kind(b%15 + 1)
			addr := uint64(b) * 13 % 4096
			size := uint64(data[(i+1)%len(data)])%256 + 1
			ops = append(ops, trace.Op{
				Kind: kind, Addr: addr, Size: size,
				Addr2: (addr + size) % 4096, Size2: size / 2,
			})
			if len(ops) > 512 {
				break
			}
		}
		for _, rules := range []RuleSet{X86{}, HOPS{}, Epoch{}} {
			r := CheckTrace(rules, &trace.Trace{Ops: ops})
			for _, d := range r.Diags {
				if d.OpIndex < 0 || d.OpIndex >= len(ops)+1 {
					t.Fatalf("diagnostic op index %d out of range (%d ops)",
						d.OpIndex, len(ops))
				}
			}
		}
	})
}
