package core

import (
	"fmt"
	"sort"
	"sync"

	"pmtest/internal/interval"
	"pmtest/internal/obs"
	"pmtest/internal/trace"
)

// SharingAnalyzer implements the extension the paper leaves as future
// work (§7.4): detecting persistent-memory ranges written by more than
// one program thread. PMTest's per-thread traces assume inter-thread PM
// dependencies are rare (the WHISPER observation); when they are not,
// per-thread checking can miss cross-thread ordering bugs. The analyzer
// does not attempt full cross-thread ordering — it surfaces exactly the
// ranges where the assumption is violated, so the developer knows where
// per-thread verdicts are incomplete.
//
// It is deliberately cheap: one interval-tree insertion per write, fed
// as traces are submitted, safe for concurrent producers.
type SharingAnalyzer struct {
	mu sync.Mutex
	// perThread maps thread id → coverage of its PM writes.
	perThread map[int]*interval.Tree[struct{}]
	// excluded ranges (library metadata) are ignored: the undo log of a
	// shared pool is written by every thread by design.
	excluded *interval.Tree[struct{}]
	// metrics, when non-nil, counts traces fed and writes tracked.
	metrics *obs.Metrics
}

// SetMetrics attaches an observability registry; nil detaches it.
func (a *SharingAnalyzer) SetMetrics(m *obs.Metrics) {
	a.mu.Lock()
	a.metrics = m
	a.mu.Unlock()
}

// NewSharingAnalyzer returns an empty analyzer. excludes are ranges to
// ignore (typically library metadata regions).
func NewSharingAnalyzer(excludes []Range) *SharingAnalyzer {
	ex := interval.New[struct{}]()
	for _, r := range excludes {
		ex.Set(r.Addr, r.Addr+r.Size, struct{}{})
	}
	return &SharingAnalyzer{
		perThread: make(map[int]*interval.Tree[struct{}]),
		excluded:  ex,
	}
}

// Feed records the writes of one trace under its thread id.
func (a *SharingAnalyzer) Feed(t *trace.Trace) {
	a.mu.Lock()
	defer a.mu.Unlock()
	tree := a.perThread[t.Thread]
	if tree == nil {
		tree = interval.New[struct{}]()
		a.perThread[t.Thread] = tree
	}
	writes := uint64(0)
	for _, op := range t.Ops {
		switch op.Kind {
		case trace.KindWrite, trace.KindWriteNT:
			if a.excluded.Covered(op.Addr, op.Addr+op.Size) {
				continue
			}
			tree.Set(op.Addr, op.Addr+op.Size, struct{}{})
			writes++
		case trace.KindExclude:
			a.excluded.Set(op.Addr, op.Addr+op.Size, struct{}{})
		}
	}
	if a.metrics != nil {
		a.metrics.SharingTracesFed.Add(1)
		a.metrics.SharingWritesTracked.Add(writes)
	}
}

// SharedRange is a PM range written by two or more threads.
type SharedRange struct {
	Addr, Size uint64
	// Threads lists the writer thread ids, ascending.
	Threads []int
}

// String renders the finding.
func (s SharedRange) String() string {
	return fmt.Sprintf("[0x%x,0x%x) written by threads %v", s.Addr, s.Addr+s.Size, s.Threads)
}

// Shared returns every range written by at least two threads, merged and
// in address order. Per-thread crash-consistency verdicts are incomplete
// for these ranges (§7.4).
func (a *SharingAnalyzer) Shared() []SharedRange {
	a.mu.Lock()
	defer a.mu.Unlock()
	// Collect all segment boundaries across threads, then count writers
	// per elementary segment.
	type seg struct {
		lo, hi uint64
		thread int
	}
	var segs []seg
	for th, tree := range a.perThread {
		for _, s := range tree.All() {
			segs = append(segs, seg{s.Lo, s.Hi, th})
		}
	}
	if len(segs) == 0 {
		return nil
	}
	// Boundary sweep.
	bounds := make([]uint64, 0, len(segs)*2)
	for _, s := range segs {
		bounds = append(bounds, s.lo, s.hi)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	bounds = dedupU64(bounds)

	var out []SharedRange
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		var writers []int
		for _, s := range segs {
			if s.lo < hi && lo < s.hi {
				writers = append(writers, s.thread)
			}
		}
		writers = dedupInt(writers)
		if len(writers) < 2 {
			continue
		}
		sort.Ints(writers)
		// Merge with the previous finding when contiguous with the same
		// writer set.
		if n := len(out); n > 0 && out[n-1].Addr+out[n-1].Size == lo &&
			equalInts(out[n-1].Threads, writers) {
			out[n-1].Size = hi - out[n-1].Addr
			continue
		}
		out = append(out, SharedRange{Addr: lo, Size: hi - lo, Threads: writers})
	}
	return out
}

func dedupU64(v []uint64) []uint64 {
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != v[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func dedupInt(v []int) []int {
	seen := map[int]bool{}
	out := v[:0]
	for _, x := range v {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
