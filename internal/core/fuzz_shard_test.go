package core

import (
	"testing"

	"pmtest/internal/trace"
)

// FuzzShardRouter: for arbitrary operation soups — hostile nesting,
// chunk-crossing ranges, zero sizes, checker spam — the configured
// checker (striping, GC, serial fallbacks included) must produce a
// report byte-identical to the serial checker, under every built-in
// rule set and several stripe geometries. Tiny chunks (256 B) make
// chunk-crossing fallbacks and cross-stripe ordered checks common
// instead of rare.
func FuzzShardRouter(f *testing.F) {
	f.Add([]byte{1, 3, 4, 1, 10}, uint8(4))
	f.Add([]byte{7, 9, 1, 8, 12, 13}, uint8(2))
	f.Add([]byte{14, 1, 15, 1, 11, 2, 5}, uint8(7))
	f.Add([]byte{12, 1, 3, 4, 13, 12, 1, 4, 13}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, shards uint8) {
		if len(data) == 0 {
			return
		}
		var ops []trace.Op
		for i, b := range data {
			kind := trace.Kind(b%15 + 1)
			addr := uint64(b) * 13 % 4096
			size := uint64(data[(i+1)%len(data)])%256 + 1
			ops = append(ops, trace.Op{
				Kind: kind, Addr: addr, Size: size,
				Addr2: (addr + size) % 4096, Size2: size / 2,
			})
			if len(ops) > 512 {
				break
			}
		}
		tr := &trace.Trace{Ops: ops}
		cfg := Config{Shards: int(shards%8) + 2, ChunkBits: 8}
		// The oracle is like-for-like: striping must never change a
		// report at equal GC settings. (GC-on vs GC-off is NOT invariant
		// on adversarial soup — a flush of a range whose intervals
		// closed beyond the GC lag draws a different warning flavor once
		// the segment is retired; the harness goldens pin that real
		// workloads never hit this.)
		gcCfg := cfg
		gcCfg.EpochGC = true
		serialGC := Config{Shards: 1, EpochGC: true}
		for _, rules := range []RuleSet{X86{}, HOPS{}, Epoch{}} {
			want := renderReport(CheckTrace(rules, tr))
			rep, _ := CheckTraceCfg(rules, tr, nil, cfg)
			if got := renderReport(rep); got != want {
				t.Fatalf("sharded diverges under %s cfg %+v\n--- serial ---\n%s--- sharded ---\n%s",
					rules.Name(), cfg, want, got)
			}
			gcWant, _ := CheckTraceCfg(rules, tr, nil, serialGC)
			gcRep, _ := CheckTraceCfg(rules, tr, nil, gcCfg)
			if got, want := renderReport(gcRep), renderReport(gcWant); got != want {
				t.Fatalf("sharded+GC diverges from serial+GC under %s cfg %+v\n--- serial+gc ---\n%s--- sharded+gc ---\n%s",
					rules.Name(), gcCfg, want, got)
			}
		}
	})
}
