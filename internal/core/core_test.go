package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pmtest/internal/trace"
)

// mk builds a trace from ops for direct CheckTrace tests.
func mk(ops ...trace.Op) *trace.Trace { return &trace.Trace{Ops: ops} }

func write(addr, size uint64) trace.Op {
	return trace.Op{Kind: trace.KindWrite, Addr: addr, Size: size, File: "test.go", Line: 1}
}

func flush(addr, size uint64) trace.Op {
	return trace.Op{Kind: trace.KindFlush, Addr: addr, Size: size, File: "test.go", Line: 2}
}

func fence() trace.Op  { return trace.Op{Kind: trace.KindFence} }
func ofence() trace.Op { return trace.Op{Kind: trace.KindOFence} }
func dfence() trace.Op { return trace.Op{Kind: trace.KindDFence} }

func isPersist(addr, size uint64) trace.Op {
	return trace.Op{Kind: trace.KindIsPersist, Addr: addr, Size: size, File: "test.go", Line: 3}
}

func isOrdered(a, sa, b, sb uint64) trace.Op {
	return trace.Op{Kind: trace.KindIsOrderedBefore, Addr: a, Size: sa, Addr2: b, Size2: sb,
		File: "test.go", Line: 4}
}

func txBegin() trace.Op { return trace.Op{Kind: trace.KindTxBegin} }
func txEnd() trace.Op   { return trace.Op{Kind: trace.KindTxEnd} }

func txAdd(addr, size uint64) trace.Op {
	return trace.Op{Kind: trace.KindTxAdd, Addr: addr, Size: size, File: "test.go", Line: 5}
}

func txCheckStart() trace.Op { return trace.Op{Kind: trace.KindTxCheckerStart} }
func txCheckEnd() trace.Op   { return trace.Op{Kind: trace.KindTxCheckerEnd, File: "test.go", Line: 6} }

func exclude(addr, size uint64) trace.Op {
	return trace.Op{Kind: trace.KindExclude, Addr: addr, Size: size}
}

func include(addr, size uint64) trace.Op {
	return trace.Op{Kind: trace.KindInclude, Addr: addr, Size: size}
}

func codes(r Report) map[Code]int {
	m := map[Code]int{}
	for _, d := range r.Diags {
		m[d.Code]++
	}
	return m
}

// TestPaperFigure7 reproduces the worked example of paper Fig. 7: the
// isPersist on 0x50 must FAIL (no clwb was issued for it) and the
// isOrderedBefore must pass (0x10's persist interval (0,1) ends where
// 0x50's (1,∞) begins).
func TestPaperFigure7(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		write(0x10, 64),
		flush(0x10, 64),
		fence(),
		write(0x50, 64),
		isPersist(0x50, 64),
		isOrdered(0x10, 64, 0x50, 64),
	))
	c := codes(r)
	if c[CodeNotPersisted] != 1 {
		t.Fatalf("want exactly 1 not-persisted FAIL, got %v", r.Summary())
	}
	if c[CodeOrderViolation] != 0 {
		t.Fatalf("isOrderedBefore should pass, got %v", r.Summary())
	}
	if r.Fails() != 1 {
		t.Fatalf("Fails = %d, want 1", r.Fails())
	}
}

// TestPaperFigure4 reproduces Fig. 4: A and B are written in the same
// epoch and only A is flushed, so their persist intervals overlap
// (isOrderedBefore FAILs) and B may never persist (isPersist FAILs).
func TestPaperFigure4(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		fence(),
		write(0xA0, 8),
		flush(0xA0, 8),
		write(0xB0, 8),
		fence(),
		isOrdered(0xA0, 8, 0xB0, 8),
		isPersist(0xB0, 8),
	))
	c := codes(r)
	if c[CodeOrderViolation] != 1 {
		t.Fatalf("want order-violation FAIL, got %v", r.Summary())
	}
	if c[CodeNotPersisted] != 1 {
		t.Fatalf("want not-persisted FAIL, got %v", r.Summary())
	}
}

// TestX86OrderedPass is the correct variant: flush+fence between the
// writes strictly orders them, and both checkers pass after a final fence.
func TestX86OrderedPass(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		write(0xA0, 8),
		flush(0xA0, 8),
		fence(),
		write(0xB0, 8),
		flush(0xB0, 8),
		fence(),
		isOrdered(0xA0, 8, 0xB0, 8),
		isPersist(0xA0, 8),
		isPersist(0xB0, 8),
	))
	if !r.Clean() {
		t.Fatalf("expected clean report, got %v", r.Summary())
	}
}

// TestX86OrderedInverted: B persists strictly before A is even written, so
// "A ordered before B" must fail.
func TestX86OrderedInverted(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		write(0xB0, 8),
		flush(0xB0, 8),
		fence(),
		write(0xA0, 8),
		flush(0xA0, 8),
		fence(),
		isOrdered(0xA0, 8, 0xB0, 8),
	))
	if codes(r)[CodeOrderViolation] != 1 {
		t.Fatalf("want order-violation, got %v", r.Summary())
	}
}

// TestX86PartialFlushStillFails: flushing only half the written range
// leaves an open persist interval on the other half.
func TestX86PartialFlushStillFails(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		write(0x100, 128),
		flush(0x100, 64), // only the first cache line
		fence(),
		isPersist(0x100, 128),
	))
	if codes(r)[CodeNotPersisted] != 1 {
		t.Fatalf("want not-persisted for unflushed half, got %v", r.Summary())
	}
}

// TestX86FlushWithoutFenceNotPersistent: a clwb alone does not persist;
// only the fence completes it.
func TestX86FlushWithoutFenceNotPersistent(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		write(0x10, 8),
		flush(0x10, 8),
		isPersist(0x10, 8),
	))
	if codes(r)[CodeNotPersisted] != 1 {
		t.Fatalf("clwb without sfence must not count as persisted: %v", r.Summary())
	}
}

// TestX86WriteNT: a non-temporal store needs only a fence.
func TestX86WriteNT(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		trace.Op{Kind: trace.KindWriteNT, Addr: 0x10, Size: 8},
		fence(),
		isPersist(0x10, 8),
	))
	if !r.Clean() {
		t.Fatalf("NT store + fence should persist, got %v", r.Summary())
	}
}

// TestX86RewriteReopensInterval: writing again after a persist reopens the
// persist interval, so isPersist fails until flushed+fenced again.
func TestX86RewriteReopensInterval(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		write(0x10, 8),
		flush(0x10, 8),
		fence(),
		write(0x10, 8),
		isPersist(0x10, 8),
	))
	if codes(r)[CodeNotPersisted] != 1 {
		t.Fatalf("rewrite must reopen persist interval: %v", r.Summary())
	}
}

func TestWarnDuplicateWriteback(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		write(0x10, 64),
		flush(0x10, 64),
		flush(0x10, 64),
	))
	if codes(r)[CodeDuplicateWriteback] != 1 {
		t.Fatalf("want duplicate-writeback WARN, got %v", r.Summary())
	}
	if r.Fails() != 0 {
		t.Fatalf("performance bug must be WARN not FAIL: %v", r.Summary())
	}
}

func TestWarnDuplicateWritebackAfterFence(t *testing.T) {
	// Flushing data that already persisted (no intervening write) is also
	// redundant — this is PMFS Bug 1's shape (paper Fig. 13a).
	r := CheckTrace(X86{}, mk(
		write(0x10, 64),
		flush(0x10, 64),
		fence(),
		flush(0x10, 64),
	))
	if codes(r)[CodeDuplicateWriteback] != 1 {
		t.Fatalf("want duplicate-writeback WARN, got %v", r.Summary())
	}
}

func TestWarnUnnecessaryWriteback(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		flush(0x900, 64),
	))
	if codes(r)[CodeUnnecessaryWriteback] != 1 {
		t.Fatalf("want unnecessary-writeback WARN, got %v", r.Summary())
	}
}

func TestNoWarnAfterWriteClearsFlushState(t *testing.T) {
	// write → flush → fence → write → flush: the second flush is needed
	// because the range was re-modified.
	r := CheckTrace(X86{}, mk(
		write(0x10, 64),
		flush(0x10, 64),
		fence(),
		write(0x10, 64),
		flush(0x10, 64),
		fence(),
		isPersist(0x10, 64),
	))
	if !r.Clean() {
		t.Fatalf("expected clean report, got %v", r.Summary())
	}
}

// TestCoarseFlushOfPartiallyModifiedRange: flushing a large buffer when
// only part was modified warns about writing back unmodified data
// (paper §5.1.2 "coarse-grain writeback").
func TestCoarseFlushOfPartiallyModifiedRange(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		write(0x100, 16),
		flush(0x100, 256),
	))
	if codes(r)[CodeUnnecessaryWriteback] != 1 {
		t.Fatalf("want unnecessary-writeback WARN for the unmodified tail, got %v", r.Summary())
	}
}

// --- Transaction checkers -------------------------------------------------

func TestTxMissingBackup(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		txCheckStart(),
		txBegin(),
		txAdd(0x100, 64),
		write(0x100, 64), // backed up: fine
		write(0x200, 8),  // not backed up: missing TX_ADD (paper Fig. 1b)
		flush(0x100, 64),
		flush(0x200, 8),
		fence(),
		txEnd(),
		txCheckEnd(),
	))
	if codes(r)[CodeMissingBackup] != 1 {
		t.Fatalf("want missing-backup FAIL, got %v", r.Summary())
	}
}

func TestTxCompletePasses(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		txCheckStart(),
		txBegin(),
		txAdd(0x100, 64),
		write(0x100, 64),
		flush(0x100, 64),
		fence(),
		txEnd(),
		txCheckEnd(),
	))
	if !r.Clean() {
		t.Fatalf("expected clean, got %v", r.Summary())
	}
}

func TestTxIncomplete(t *testing.T) {
	// Updates are never flushed before the transaction ends → at
	// TX_CHECKER_END the injected isPersist fails (paper §5.1.1).
	r := CheckTrace(X86{}, mk(
		txCheckStart(),
		txBegin(),
		txAdd(0x100, 64),
		write(0x100, 64),
		txEnd(),
		txCheckEnd(),
	))
	if codes(r)[CodeIncompleteTx] != 1 {
		t.Fatalf("want incomplete-tx FAIL, got %v", r.Summary())
	}
}

func TestTxDuplicateLog(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		txCheckStart(),
		txBegin(),
		txAdd(0x100, 64),
		txAdd(0x100, 64), // paper Fig. 13c: same node logged twice
		write(0x100, 64),
		flush(0x100, 64),
		fence(),
		txEnd(),
		txCheckEnd(),
	))
	if codes(r)[CodeDuplicateLog] != 1 {
		t.Fatalf("want duplicate-log WARN, got %v", r.Summary())
	}
}

func TestTxLogClearedBetweenTransactions(t *testing.T) {
	// A TX_ADD in a *previous* transaction does not cover a later one.
	r := CheckTrace(X86{}, mk(
		txCheckStart(),
		txBegin(),
		txAdd(0x100, 64),
		write(0x100, 64),
		flush(0x100, 64),
		fence(),
		txEnd(),
		txBegin(),
		write(0x100, 64), // needs a fresh TX_ADD
		flush(0x100, 64),
		fence(),
		txEnd(),
		txCheckEnd(),
	))
	if codes(r)[CodeMissingBackup] != 1 {
		t.Fatalf("log must not carry across transactions: %v", r.Summary())
	}
}

func TestTxNestedDepth(t *testing.T) {
	// Log added in the outer transaction covers writes in the inner one;
	// the log is only discarded when the outermost commits.
	r := CheckTrace(X86{}, mk(
		txCheckStart(),
		txBegin(),
		txAdd(0x100, 64),
		txBegin(),
		write(0x100, 64),
		txEnd(),
		flush(0x100, 64),
		fence(),
		txEnd(),
		txCheckEnd(),
	))
	if !r.Clean() {
		t.Fatalf("expected clean, got %v", r.Summary())
	}
}

func TestExcludeSuppressesChecks(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		exclude(0x200, 8),
		txCheckStart(),
		txBegin(),
		write(0x200, 8), // excluded: no missing-backup, no injected isPersist
		txEnd(),
		txCheckEnd(),
	))
	if !r.Clean() {
		t.Fatalf("excluded range must be skipped, got %v", r.Summary())
	}
}

func TestIncludeRestoresChecks(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		exclude(0x200, 8),
		include(0x200, 8),
		txCheckStart(),
		txBegin(),
		write(0x200, 8),
		txEnd(),
		txCheckEnd(),
	))
	c := codes(r)
	if c[CodeMissingBackup] != 1 || c[CodeIncompleteTx] != 1 {
		t.Fatalf("re-included range must be checked again, got %v", r.Summary())
	}
}

func TestUnbalancedTxWarns(t *testing.T) {
	r := CheckTrace(X86{}, mk(txEnd()))
	if codes(r)[CodeUnbalancedTx] != 1 {
		t.Fatalf("want unbalanced-tx WARN, got %v", r.Summary())
	}
	r = CheckTrace(X86{}, mk(txCheckEnd()))
	if codes(r)[CodeUnbalancedTx] != 1 {
		t.Fatalf("want unbalanced-tx WARN for stray checker end, got %v", r.Summary())
	}
	r = CheckTrace(X86{}, mk(txCheckStart()))
	if codes(r)[CodeUnbalancedTx] != 1 {
		t.Fatalf("want unbalanced-tx WARN for unclosed checker scope, got %v", r.Summary())
	}
}

// --- HOPS model (paper §5.2, Fig. 3b) --------------------------------------

func TestHOPSFigure3b(t *testing.T) {
	r := CheckTrace(HOPS{}, mk(
		write(0xA0, 8),
		ofence(),
		write(0xB0, 8),
		dfence(),
		isOrdered(0xA0, 8, 0xB0, 8),
		isPersist(0xA0, 8),
		isPersist(0xB0, 8),
	))
	if !r.Clean() {
		t.Fatalf("Fig. 3b trace should pass under HOPS, got %v", r.Summary())
	}
}

func TestHOPSMissingOFence(t *testing.T) {
	r := CheckTrace(HOPS{}, mk(
		write(0xA0, 8),
		write(0xB0, 8), // same epoch: not ordered
		dfence(),
		isOrdered(0xA0, 8, 0xB0, 8),
	))
	if codes(r)[CodeOrderViolation] != 1 {
		t.Fatalf("same-epoch writes are unordered under HOPS: %v", r.Summary())
	}
}

func TestHOPSOFenceDoesNotPersist(t *testing.T) {
	r := CheckTrace(HOPS{}, mk(
		write(0xA0, 8),
		ofence(),
		isPersist(0xA0, 8),
	))
	if codes(r)[CodeNotPersisted] != 1 {
		t.Fatalf("ofence orders but does not drain: %v", r.Summary())
	}
}

func TestHOPSFlushWarns(t *testing.T) {
	r := CheckTrace(HOPS{}, mk(
		write(0xA0, 8),
		flush(0xA0, 8),
	))
	if codes(r)[CodeUnnecessaryWriteback] != 1 {
		t.Fatalf("clwb is unnecessary under HOPS: %v", r.Summary())
	}
}

// --- Epoch model (extension) ------------------------------------------------

func TestEpochBarrierOrdersAndDrains(t *testing.T) {
	r := CheckTrace(Epoch{}, mk(
		write(0xA0, 8),
		fence(),
		write(0xB0, 8),
		fence(),
		isOrdered(0xA0, 8, 0xB0, 8),
		isPersist(0xA0, 8),
		isPersist(0xB0, 8),
	))
	if !r.Clean() {
		t.Fatalf("expected clean under epoch model, got %v", r.Summary())
	}
}

func TestEpochSameEpochUnordered(t *testing.T) {
	r := CheckTrace(Epoch{}, mk(
		write(0xA0, 8),
		write(0xB0, 8),
		fence(),
		isOrdered(0xA0, 8, 0xB0, 8),
	))
	if codes(r)[CodeOrderViolation] != 1 {
		t.Fatalf("same-epoch writes unordered: %v", r.Summary())
	}
}

// --- Diagnostics content ----------------------------------------------------

func TestDiagnosticSitesPointAtSources(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		write(0x10, 8), // test.go:1
		isPersist(0x10, 8),
	))
	if len(r.Diags) != 1 {
		t.Fatalf("want 1 diag, got %v", r.Summary())
	}
	d := r.Diags[0]
	if d.Site != "test.go:3" {
		t.Errorf("Site = %q, want test.go:3 (the checker)", d.Site)
	}
	if d.Related != "test.go:1" {
		t.Errorf("Related = %q, want test.go:1 (the write)", d.Related)
	}
	if d.OpIndex != 1 {
		t.Errorf("OpIndex = %d, want 1", d.OpIndex)
	}
}

// --- Engine (worker pool) ---------------------------------------------------

func TestEngineRoundRobinAllChecked(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		e := NewEngine(Options{Workers: workers})
		const n = 50
		for i := 0; i < n; i++ {
			e.Submit(mk(
				write(0x10, 8),
				isPersist(0x10, 8), // always fails
			))
		}
		reports := e.Close()
		if len(reports) != n {
			t.Fatalf("workers=%d: got %d reports, want %d", workers, len(reports), n)
		}
		for i, r := range reports {
			if r.TraceID != i {
				t.Fatalf("reports not in trace order: got id %d at %d", r.TraceID, i)
			}
			if r.Fails() != 1 {
				t.Fatalf("trace %d: fails = %d, want 1", i, r.Fails())
			}
		}
	}
}

func TestEngineWaitThenSubmitMore(t *testing.T) {
	e := NewEngine(Options{Workers: 2})
	e.Submit(mk(write(0x10, 8), flush(0x10, 8), fence(), isPersist(0x10, 8)))
	if got := e.Wait(); len(got) != 1 || !got[0].Clean() {
		t.Fatalf("first wait: %v", got)
	}
	e.Submit(mk(write(0x20, 8), isPersist(0x20, 8)))
	reports := e.Close()
	if len(reports) != 2 || reports[1].Fails() != 1 {
		t.Fatalf("second batch: %v", reports)
	}
}

func TestEngineTrackOnlyReportsNothing(t *testing.T) {
	e := NewEngine(Options{TrackOnly: true})
	e.Submit(mk(write(0x10, 8), isPersist(0x10, 8)))
	reports := e.Close()
	if len(reports) != 1 || !reports[0].Clean() {
		t.Fatalf("track-only must not validate checkers: %v", reports)
	}
}

func TestEngineSubmitAfterClosePanics(t *testing.T) {
	e := NewEngine(Options{})
	e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Submit after Close should panic")
		}
	}()
	e.Submit(mk(write(0x10, 8)))
}

func TestMergeAndCount(t *testing.T) {
	r1 := CheckTrace(X86{}, mk(write(0x10, 8), isPersist(0x10, 8)))
	r2 := CheckTrace(X86{}, mk(flush(0x99, 8)))
	all := MergeReports([]Report{r1, r2})
	if len(all) != 2 {
		t.Fatalf("merged = %d, want 2", len(all))
	}
	if CountCode([]Report{r1, r2}, CodeNotPersisted) != 1 {
		t.Fatal("CountCode(not-persisted) != 1")
	}
	if CountCode([]Report{r1, r2}, CodeUnnecessaryWriteback) != 1 {
		t.Fatal("CountCode(unnecessary-writeback) != 1")
	}
}

// --- Property tests ---------------------------------------------------------

// TestQuickFlushedFencedAlwaysPersists: whatever the prefix of random PM
// operations, flushing every written range and fencing makes isPersist
// pass — the fundamental soundness direction of the x86 rules.
func TestQuickFlushedFencedAlwaysPersists(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var ops []trace.Op
		written := map[uint64]bool{}
		for i := 0; i < int(n%40); i++ {
			addr := uint64(rng.Intn(16)) * 64
			switch rng.Intn(3) {
			case 0:
				ops = append(ops, write(addr, 64))
				written[addr] = true
			case 1:
				if written[addr] {
					ops = append(ops, flush(addr, 64))
				}
			case 2:
				ops = append(ops, fence())
			}
		}
		// Epilogue: flush everything written, fence, then check.
		for addr := range written {
			ops = append(ops, flush(addr, 64))
		}
		ops = append(ops, fence())
		for addr := range written {
			ops = append(ops, isPersist(addr, 64))
		}
		r := CheckTrace(X86{}, mk(ops...))
		return r.Fails() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNoFenceNeverPersists: without any fence, isPersist on a written
// range always fails, regardless of flushes.
func TestQuickNoFenceNeverPersists(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var ops []trace.Op
		addr := uint64(rng.Intn(8)) * 64
		ops = append(ops, write(addr, 64))
		for i := 0; i < int(n%20); i++ {
			a := uint64(rng.Intn(8)) * 64
			if rng.Intn(2) == 0 {
				ops = append(ops, write(a, 64))
			} else {
				ops = append(ops, flush(a, 64))
			}
		}
		ops = append(ops, isPersist(addr, 64))
		r := CheckTrace(X86{}, mk(ops...))
		return CountCode([]Report{r}, CodeNotPersisted) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEngineMatchesInline: the concurrent engine must produce exactly
// the verdicts of the pure CheckTrace function.
func TestQuickEngineMatchesInline(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var traces []*trace.Trace
		for i := 0; i < 8; i++ {
			var ops []trace.Op
			for j := 0; j < 20; j++ {
				addr := uint64(rng.Intn(8)) * 64
				switch rng.Intn(5) {
				case 0:
					ops = append(ops, write(addr, 64))
				case 1:
					ops = append(ops, flush(addr, 64))
				case 2:
					ops = append(ops, fence())
				case 3:
					ops = append(ops, isPersist(addr, 64))
				case 4:
					ops = append(ops, isOrdered(addr, 64, (addr+64)%512, 64))
				}
			}
			traces = append(traces, mk(ops...))
		}
		var want []Report
		for i, tr := range traces {
			cp := &trace.Trace{ID: i, Ops: tr.Ops}
			want = append(want, CheckTrace(X86{}, cp))
		}
		e := NewEngine(Options{Workers: 3})
		for _, tr := range traces {
			e.Submit(tr)
		}
		got := e.Close()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Fails() != want[i].Fails() || got[i].Warns() != want[i].Warns() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestShadowDump(t *testing.T) {
	s := NewState()
	rules := X86{}
	for _, op := range []trace.Op{write(0x10, 64), flush(0x10, 64), fence(), write(0x50, 64)} {
		rules.Apply(s, op)
	}
	sh := s.Shadow()
	if len(sh) != 2 {
		t.Fatalf("shadow entries = %d, want 2", len(sh))
	}
	if sh[0].PI.Open() || sh[0].PI.End != 1 {
		t.Errorf("first PI = %v, want closed at 1", sh[0].PI)
	}
	if !sh[1].PI.Open() {
		t.Errorf("second PI = %v, want open", sh[1].PI)
	}
}
