package core

import (
	"fmt"

	"pmtest/internal/interval"
	"pmtest/internal/trace"
)

// Inf marks an interval that has not been closed by a fence: the write may
// persist at any time moving forward (paper §4.4).
const Inf = ^uint64(0)

// EpochInterval is the (start, end] epoch range in which an event (persist
// or writeback) may take effect. End == Inf means the event is never
// guaranteed to happen within the trace.
type EpochInterval struct {
	Start uint64
	End   uint64
}

// Open reports whether the interval has not been closed by a fence.
func (e EpochInterval) Open() bool { return e.End == Inf }

// Overlaps reports whether two persist intervals overlap, meaning the two
// events are not strictly ordered. Touching intervals — one ending exactly
// where the other starts — do NOT overlap: in the paper's Fig. 7, PI(0,1)
// and PI(1,∞) are ordered.
func (e EpochInterval) Overlaps(o EpochInterval) bool {
	return e.Start < o.End && o.Start < e.End
}

// String renders "(s,e)" with ∞ for open ends, matching the paper.
func (e EpochInterval) String() string {
	if e.Open() {
		return fmt.Sprintf("(%d,∞)", e.Start)
	}
	return fmt.Sprintf("(%d,%d)", e.Start, e.End)
}

// status is the per-range persistency status stored in the shadow memory:
// the local state of §4.4 (persist_interval, flush_interval) plus the
// source site of the last write for diagnostics.
type status struct {
	PI    EpochInterval // when the last write to the range may persist
	HasPI bool
	FI    EpochInterval // when a pending writeback may take effect
	HasFI bool
	// WriteSite locates the store that created the persist interval, so a
	// failing isPersist can point back at the unpersisted write.
	WriteSite string
}

// logInfo is the per-range value of the log tree (§5.1.1): where the range
// was TX_ADDed, so duplicate-log warnings can cite the first backup.
type logInfo struct {
	Site string
}

// writeInfo records a range modified inside a checked transaction, used by
// TX_CHECKER_END to inject isPersist checks for every modified object.
type writeInfo struct {
	Site string
}

// State is the checking state for a single trace: one shadow memory, one
// global timestamp, the transaction log tree, and the accumulated
// diagnostics. Each trace gets a fresh State (§4.4: "every trace has its
// shadow memory").
type State struct {
	// T is the global epoch counter, incremented at every ordering fence.
	T uint64
	// Mem is the shadow memory: address range → persistency status.
	Mem *interval.Tree[status]
	// Log tracks ranges backed up by TX_ADD inside the current
	// outermost transaction.
	Log *interval.Tree[logInfo]
	// Written tracks ranges modified inside the active TX_CHECKER scope.
	Written *interval.Tree[writeInfo]
	// Excluded holds ranges removed from the testing scope
	// (PMTest_EXCLUDE); automatic checks and warnings skip them.
	Excluded *interval.Tree[struct{}]

	// TxDepth is the current transaction nesting depth.
	TxDepth int
	// TxCheckActive is set between TX_CHECKER_START and TX_CHECKER_END.
	TxCheckActive bool

	diags   []Diagnostic
	opIndex int
	// diagKey is stamped into the sortKey of every diagnostic reported
	// while it is set; applyTxCheckerEnd sets it to the written segment's
	// address so the sharded merge can reconstruct emission order.
	diagKey uint64
	// muted suppresses warnings about trace-global structure (unbalanced
	// tx/checker scopes). In a sharded check every stripe replays those
	// broadcast ops; only stripe 0 may report them, or the merged report
	// would repeat each warning once per stripe.
	muted bool

	// Epoch GC (sharded streaming mode): when gcOn, each fence retires
	// shadow-memory segments whose persist and flush intervals both closed
	// at least gcLag epochs ago — no future op or checker can change or
	// observe anything about them except via warnings on re-flush, which
	// gcLag epochs of slack make vanishingly unlikely in real traces.
	gcOn      bool
	gcLag     uint64
	gcRetired uint64
	gcScratch []gcRange
	// peakIntervals is the high-water mark of Mem.Len() sampled at fences.
	peakIntervals int

	// Scratch buffers reused across operations (and, via the state pool,
	// across traces) so the checking hot path performs no per-op slice
	// allocations. segScratch serves x86Flush and the first operand of
	// isOrderedBefore; segScratch2 serves the second operand.
	segScratch  []interval.Seg[status]
	segScratch2 []interval.Seg[status]
}

// gcRange is a retirable address range collected during the fence scan.
type gcRange struct{ lo, hi uint64 }

// NewState returns the empty checking state for a fresh trace.
func NewState() *State {
	return &State{
		Mem:      interval.New[status](),
		Log:      interval.New[logInfo](),
		Written:  interval.New[writeInfo](),
		Excluded: interval.New[struct{}](),
	}
}

// Reset returns the state to its freshly-constructed condition while
// keeping allocated capacity — tree node freelists and scratch buffers —
// so a pooled State checks its next trace without reallocating. The
// diagnostics slice is detached, not truncated: the previous trace's
// Report owns it.
func (s *State) Reset() {
	s.T = 0
	s.Mem.Clear()
	s.Log.Clear()
	s.Written.Clear()
	s.Excluded.Clear()
	s.TxDepth = 0
	s.TxCheckActive = false
	s.diags = nil
	s.opIndex = 0
	s.diagKey = 0
	s.muted = false
	s.gcOn = false
	s.gcLag = 0
	s.gcRetired = 0
	s.peakIntervals = 0
}

// fenceEpilogue runs at the end of every epoch-advancing fence: sample the
// shadow-memory high-water mark and, when epoch GC is enabled, retire
// segments whose intervals are fully closed and older than the GC lag.
func (s *State) fenceEpilogue() {
	if n := s.Mem.Len(); n > s.peakIntervals {
		s.peakIntervals = n
	}
	if !s.gcOn {
		return
	}
	// A segment is dead once every interval it carries ended at least
	// gcLag epochs before the current one: no later fence will move it,
	// and checkers only fail on open intervals.
	if s.T < s.gcLag {
		return
	}
	horizon := s.T - s.gcLag
	s.gcScratch = s.gcScratch[:0]
	s.Mem.ForEachPtr(func(lo, hi uint64, st *status) {
		if st.HasPI && (st.PI.Open() || st.PI.End > horizon) {
			return
		}
		if st.HasFI && (st.FI.Open() || st.FI.End > horizon) {
			return
		}
		s.gcScratch = append(s.gcScratch, gcRange{lo, hi})
	})
	for _, g := range s.gcScratch {
		s.Mem.Delete(g.lo, g.hi)
	}
	s.gcRetired += uint64(len(s.gcScratch))
}

// report appends a diagnostic anchored at the current operation.
func (s *State) report(sev Severity, code Code, site, related, format string, args ...any) {
	if s.diags == nil {
		// Most traces are clean; size the first growth for the common
		// several-findings case instead of the append 1→2→4 ramp.
		s.diags = make([]Diagnostic, 0, 8)
	}
	s.diags = append(s.diags, Diagnostic{
		Severity: sev,
		Code:     code,
		Message:  fmt.Sprintf(format, args...),
		Site:     site,
		Related:  related,
		OpIndex:  s.opIndex,
		sortKey:  s.diagKey,
	})
}

// excluded reports whether the whole range is inside the excluded scope.
func (s *State) excluded(lo, hi uint64) bool {
	return s.Excluded.Covered(lo, hi)
}

// --- Shared operation semantics -------------------------------------------
//
// The handlers below implement the parts of §4.4 and §5.1 that are common
// to all persistency models: how writes open persist intervals, how the
// transaction log tree is maintained, and how the two low-level checkers
// and the transaction checkers are validated. Model-specific behaviour
// (what clwb and the fences do) lives in the RuleSet implementations.

// applyWrite clears any prior status for the range and opens a fresh
// persist interval starting at the current epoch. When ntFlushed is true
// (non-temporal store) the write also carries an open flush interval: it
// bypasses the cache and only awaits a fence.
func (s *State) applyWrite(op trace.Op, ntFlushed bool) {
	lo, hi := op.Addr, op.Addr+op.Size
	if s.TxCheckActive && s.TxDepth > 0 && !s.excluded(lo, hi) {
		// §5.1.1: inside a checked transaction every modified range must
		// already be in the log tree.
		if !s.Log.Covered(lo, hi) {
			for _, g := range s.Log.Gaps(lo, hi) {
				if s.excluded(g.Lo, g.Hi) {
					continue
				}
				s.report(SeverityFail, CodeMissingBackup, opSite(op), "",
					"modifying [0x%x,0x%x) without a log backup (missing TX_ADD)", g.Lo, g.Hi)
				break // one finding per write is enough
			}
		}
	}
	if s.TxCheckActive {
		s.Written.Set(lo, hi, writeInfo{Site: opSite(op)})
	}
	st := status{
		PI:        EpochInterval{Start: s.T, End: Inf},
		HasPI:     true,
		WriteSite: opSite(op),
	}
	if ntFlushed {
		st.FI = EpochInterval{Start: s.T, End: Inf}
		st.HasFI = true
	}
	s.Mem.Set(lo, hi, st)
}

// applyTxBegin/applyTxEnd maintain nesting depth; the log tree lives for
// the duration of the outermost transaction.
func (s *State) applyTxBegin(op trace.Op) {
	s.TxDepth++
}

func (s *State) applyTxEnd(op trace.Op) {
	if s.TxDepth == 0 {
		if !s.muted {
			s.report(SeverityWarn, CodeUnbalancedTx, opSite(op), "",
				"transaction end without matching begin")
		}
		return
	}
	s.TxDepth--
	if s.TxDepth == 0 {
		// The undo log is discarded when the outermost transaction
		// commits; backups do not carry across transactions.
		s.Log.Clear()
	}
}

// applyTxAdd records an undo-log backup and warns on duplicates (§5.1.2:
// "Check Duplicated Log").
func (s *State) applyTxAdd(op trace.Op) {
	lo, hi := op.Addr, op.Addr+op.Size
	if s.TxCheckActive && !s.excluded(lo, hi) {
		var firstSite string
		s.Log.Visit(lo, hi, func(seg interval.Seg[logInfo]) bool {
			firstSite = seg.Val.Site
			return false
		})
		if firstSite != "" {
			s.report(SeverityWarn, CodeDuplicateLog, opSite(op), firstSite,
				"object [0x%x,0x%x) already logged in this transaction", lo, hi)
		}
	}
	s.Log.Set(lo, hi, logInfo{Site: opSite(op)})
}

// applyTxCheckerStart opens a transaction-checker scope (§5.1.1).
func (s *State) applyTxCheckerStart(op trace.Op) {
	if s.TxCheckActive && !s.muted {
		s.report(SeverityWarn, CodeUnbalancedTx, opSite(op), "",
			"TX_CHECKER_START while a checker scope is already active")
	}
	s.TxCheckActive = true
	s.Written.Clear()
}

// applyTxCheckerEnd injects an isPersist check for every range modified in
// the scope (§5.1.1: "Check Incomplete Transactions") and closes the scope.
func (s *State) applyTxCheckerEnd(op trace.Op) {
	if !s.TxCheckActive {
		if !s.muted {
			s.report(SeverityWarn, CodeUnbalancedTx, opSite(op), "",
				"TX_CHECKER_END without matching TX_CHECKER_START")
		}
		return
	}
	s.Written.Visit(0, ^uint64(0), func(seg interval.Seg[writeInfo]) bool {
		if !s.excluded(seg.Lo, seg.Hi) {
			// Key each injected check by the written segment's address:
			// the merge of per-stripe diagnostics sorts by this key,
			// reproducing the serial address-order walk.
			s.diagKey = seg.Lo
			s.checkPersistRange(seg.Lo, seg.Hi, op, CodeIncompleteTx)
		}
		return true
	})
	s.diagKey = 0
	s.TxCheckActive = false
	s.Written.Clear()
}

// applyExclude / applyInclude adjust the testing scope (Table 2).
func (s *State) applyExclude(op trace.Op) {
	s.Excluded.Set(op.Addr, op.Addr+op.Size, struct{}{})
}

func (s *State) applyInclude(op trace.Op) {
	s.Excluded.Delete(op.Addr, op.Addr+op.Size)
}

// checkPersistRange validates that every persist interval in [lo, hi) has
// been closed by a fence — the isPersist rule of §4.4. code distinguishes
// a user-placed checker (CodeNotPersisted) from the injected transaction
// check (CodeIncompleteTx).
func (s *State) checkPersistRange(lo, hi uint64, op trace.Op, code Code) {
	s.Mem.Visit(lo, hi, func(seg interval.Seg[status]) bool {
		if seg.Val.HasPI && seg.Val.PI.Open() {
			s.report(SeverityFail, code, opSite(op), seg.Val.WriteSite,
				"[0x%x,0x%x) may not be persistent: persist interval %s never ends",
				seg.Lo, seg.Hi, seg.Val.PI)
			return false // one finding per checker
		}
		return true
	})
}

// applyIsPersist handles the isPersist checker.
func (s *State) applyIsPersist(op trace.Op) {
	s.checkPersistRange(op.Addr, op.Addr+op.Size, op, CodeNotPersisted)
}

// persistIntervals appends the persist intervals (and their write sites)
// overlapping [lo, hi) to dst, which callers recycle as scratch.
func (s *State) persistIntervals(dst []interval.Seg[status], lo, hi uint64) []interval.Seg[status] {
	s.Mem.Visit(lo, hi, func(seg interval.Seg[status]) bool {
		if seg.Val.HasPI {
			dst = append(dst, seg)
		}
		return true
	})
	return dst
}

// applyIsOrderedBefore handles the isOrderedBefore checker. Under a strict
// model (x86) interval *ends* must precede interval *starts*; under a
// relaxed, fence-ordered model (HOPS) interval starts are compared
// (§4.4 vs §5.2). byStart selects the latter.
func (s *State) applyIsOrderedBefore(op trace.Op, byStart bool) {
	s.segScratch = s.persistIntervals(s.segScratch[:0], op.Addr, op.Addr+op.Size)
	s.segScratch2 = s.persistIntervals(s.segScratch2[:0], op.Addr2, op.Addr2+op.Size2)
	s.orderedBeforeSegs(op, byStart, s.segScratch, s.segScratch2)
}

// orderedBeforeSegs is the comparison core of applyIsOrderedBefore,
// operating on pre-gathered persist intervals. The sharded coordinator
// calls it directly when the two operand ranges live on different
// stripes: the segments come from two stripes' shadow memories while the
// diagnostic lands on the coordinator's own state.
func (s *State) orderedBeforeSegs(op trace.Op, byStart bool, as, bs []interval.Seg[status]) {
	for _, a := range as {
		for _, b := range bs {
			if byStart {
				if a.Val.PI.Start >= b.Val.PI.Start {
					s.report(SeverityFail, CodeOrderViolation, opSite(op), a.Val.WriteSite,
						"[0x%x,0x%x) %s does not begin persisting before [0x%x,0x%x) %s",
						a.Lo, a.Hi, a.Val.PI, b.Lo, b.Hi, b.Val.PI)
					return
				}
				continue
			}
			if a.Val.PI.Overlaps(b.Val.PI) || a.Val.PI.Start >= b.Val.PI.End || a.Val.PI.Open() {
				s.report(SeverityFail, CodeOrderViolation, opSite(op), a.Val.WriteSite,
					"persist intervals overlap: [0x%x,0x%x) %s vs [0x%x,0x%x) %s — writes may reorder",
					a.Lo, a.Hi, a.Val.PI, b.Lo, b.Hi, b.Val.PI)
				return
			}
		}
	}
}
