//go:build !race

package core

// Allocation-regression tests: the checking hot path is pooled
// (statePool + interval-tree node freelists + scratch buffers), so a
// steady stream of clean traces must check without per-trace
// allocations. These ceilings fail `go test` locally the moment a
// change reintroduces per-op allocation — the bench job's compare gate
// is the second, coarser line of defense. Excluded under -race: the
// race runtime randomly drops sync.Pool items to widen interleaving
// coverage, which makes allocation counts meaningless.

import (
	"testing"

	"pmtest/internal/trace"
)

// cleanMicroOps builds the clean transactional section the micro suite
// ships per insert: logged, written, flushed lines closed by one fence.
func cleanMicroOps(writes int) []trace.Op {
	ops := []trace.Op{{Kind: trace.KindTxCheckerStart}, {Kind: trace.KindTxBegin}}
	for i := 0; i < writes; i++ {
		addr := uint64(0x1000 + i*64)
		ops = append(ops,
			trace.Op{Kind: trace.KindTxAdd, Addr: addr, Size: 64},
			trace.Op{Kind: trace.KindWrite, Addr: addr, Size: 64},
			trace.Op{Kind: trace.KindFlush, Addr: addr, Size: 64})
	}
	return append(ops, trace.Op{Kind: trace.KindFence},
		trace.Op{Kind: trace.KindTxEnd}, trace.Op{Kind: trace.KindTxCheckerEnd})
}

// TestCheckTraceAllocCeiling pins allocs per checked trace. The pre-pool
// baseline for this trace shape was ~1286 allocs; steady state is now 0.
// The ceiling leaves slack for a GC clearing the pool mid-measurement,
// while still failing loudly on any real regression.
func TestCheckTraceAllocCeiling(t *testing.T) {
	tr := &trace.Trace{Ops: cleanMicroOps(256)}
	const ceiling = 64.0
	allocs := testing.AllocsPerRun(100, func() {
		rep := CheckTrace(X86{}, tr)
		if !rep.Clean() {
			t.Fatal("clean trace flagged")
		}
	})
	if allocs > ceiling {
		t.Fatalf("CheckTrace on a clean 256-write section: %.1f allocs/op, ceiling %v (pre-optimization baseline ~1286)",
			allocs, ceiling)
	}
}

// TestCheckTraceAllocCeilingOrdered covers the isOrderedBefore path,
// whose operand collection used to allocate two slices per checker.
func TestCheckTraceAllocCeilingOrdered(t *testing.T) {
	ops := []trace.Op{
		{Kind: trace.KindWrite, Addr: 0x1000, Size: 64},
		{Kind: trace.KindFlush, Addr: 0x1000, Size: 64},
		{Kind: trace.KindFence},
		{Kind: trace.KindWrite, Addr: 0x2000, Size: 64},
		{Kind: trace.KindFlush, Addr: 0x2000, Size: 64},
		{Kind: trace.KindFence},
		{Kind: trace.KindIsOrderedBefore, Addr: 0x1000, Size: 64, Addr2: 0x2000, Size2: 64},
		{Kind: trace.KindIsPersist, Addr: 0x2000, Size: 64},
	}
	tr := &trace.Trace{Ops: ops}
	const ceiling = 16.0
	allocs := testing.AllocsPerRun(100, func() {
		rep := CheckTrace(X86{}, tr)
		if !rep.Clean() {
			t.Fatal("clean ordered trace flagged")
		}
	})
	if allocs > ceiling {
		t.Fatalf("CheckTrace with checkers: %.1f allocs/op, ceiling %v", allocs, ceiling)
	}
}
