package core

import (
	"strings"
	"testing"

	"pmtest/internal/trace"
)

// Additional edge-case coverage for the engine and rule sets.

func TestIsOrderedBeforeVacuousCases(t *testing.T) {
	// Neither range ever written: vacuously ordered (nothing to compare).
	r := CheckTrace(X86{}, mk(isOrdered(0x10, 8, 0x20, 8)))
	if !r.Clean() {
		t.Fatalf("vacuous isOrderedBefore flagged: %s", r.Summary())
	}
	// Only B written: nothing in A constrains the order.
	r = CheckTrace(X86{}, mk(write(0x20, 8), isOrdered(0x10, 8, 0x20, 8)))
	if !r.Clean() {
		t.Fatalf("A-empty isOrderedBefore flagged: %s", r.Summary())
	}
	// Only A written and open: A may persist after anything — but with no
	// writes in B there is nothing to violate.
	r = CheckTrace(X86{}, mk(write(0x10, 8), isOrdered(0x10, 8, 0x20, 8)))
	if !r.Clean() {
		t.Fatalf("B-empty isOrderedBefore flagged: %s", r.Summary())
	}
}

func TestIsPersistOnNeverWrittenRangePasses(t *testing.T) {
	// isPersist asserts "persisted since last update"; with no update in
	// the trace the assertion is vacuous (the paper's semantics).
	r := CheckTrace(X86{}, mk(isPersist(0x1000, 64)))
	if !r.Clean() {
		t.Fatalf("vacuous isPersist flagged: %s", r.Summary())
	}
}

func TestWriteSpanningExcludedBoundary(t *testing.T) {
	// A write that straddles an excluded range: only the non-excluded
	// part must be covered by the log.
	r := CheckTrace(X86{}, mk(
		exclude(0x100, 32),
		txCheckStart(),
		txBegin(),
		write(0x100, 64), // [0x100,0x120) excluded, [0x120,0x140) not
		txEnd(),
		txCheckEnd(),
	))
	if !r.HasCode(CodeMissingBackup) {
		t.Fatalf("non-excluded half must need a backup: %s", r.Summary())
	}
}

func TestFenceWithNothingPendingIsHarmless(t *testing.T) {
	r := CheckTrace(X86{}, mk(fence(), fence(), fence()))
	if !r.Clean() {
		t.Fatalf("bare fences flagged: %s", r.Summary())
	}
}

func TestOverlappingWritesMergeIntervals(t *testing.T) {
	// Overlapping writes: the later write's interval governs the overlap.
	r := CheckTrace(X86{}, mk(
		write(0x100, 64),
		flush(0x100, 64),
		fence(),
		write(0x120, 64), // overlaps the tail of the first write
		isPersist(0x100, 32),
	))
	if !r.Clean() {
		t.Fatalf("persisted prefix flagged: %s", r.Summary())
	}
	r = CheckTrace(X86{}, mk(
		write(0x100, 64),
		flush(0x100, 64),
		fence(),
		write(0x120, 64),
		isPersist(0x100, 64), // includes re-dirtied suffix
	))
	if !r.HasCode(CodeNotPersisted) {
		t.Fatalf("re-dirtied suffix must fail: %s", r.Summary())
	}
}

func TestEngineQueueBackpressure(t *testing.T) {
	// A tiny queue forces Submit to block until workers drain; all traces
	// must still be checked exactly once.
	e := NewEngine(Options{Workers: 1, QueueDepth: 1})
	const n = 200
	for i := 0; i < n; i++ {
		e.Submit(mk(write(0x10, 8), flush(0x10, 8), fence(), isPersist(0x10, 8)))
	}
	reports := e.Close()
	if len(reports) != n {
		t.Fatalf("reports = %d, want %d", len(reports), n)
	}
}

func TestSummarizeOutput(t *testing.T) {
	r1 := CheckTrace(X86{}, mk(write(0x10, 8), isPersist(0x10, 8)))
	r2 := CheckTrace(X86{}, mk(write(0x20, 8), flush(0x20, 8), fence(), isPersist(0x20, 8)))
	out := Summarize([]Report{r1, r2})
	if !strings.Contains(out, "2 traces checked: 1 FAIL, 0 WARN") {
		t.Fatalf("Summarize = %q", out)
	}
	if !strings.Contains(out, "not-persisted") {
		t.Fatalf("missing finding detail: %q", out)
	}
}

func TestReportSummaryPass(t *testing.T) {
	r := Report{TraceID: 7}
	if got := r.Summary(); got != "trace 7: PASS" {
		t.Fatalf("Summary = %q", got)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Severity: SeverityFail, Code: CodeNotPersisted,
		Message: "boom", Site: "a.go:1", Related: "b.go:2",
	}
	want := "FAIL [not-persisted] @a.go:1: boom (related: b.go:2)"
	if d.String() != want {
		t.Fatalf("String = %q, want %q", d.String(), want)
	}
	if SeverityInfo.String() != "INFO" || SeverityWarn.String() != "WARN" {
		t.Fatal("severity strings wrong")
	}
}

func TestModelsRegistry(t *testing.T) {
	m := Models()
	for _, name := range []string{"x86", "arm", "hops", "epoch"} {
		rs, ok := m[name]
		if !ok || rs.Name() != name {
			t.Fatalf("Models()[%q] = %v", name, rs)
		}
	}
}

// TestHOPSShadowHasNoFlushIntervals: the HOPS rule set never opens flush
// intervals (§5.2 removes them from the shadow memory).
func TestHOPSShadowHasNoFlushIntervals(t *testing.T) {
	s := NewState()
	rules := HOPS{}
	for _, op := range []trace.Op{write(0x10, 8), ofence(), write(0x20, 8), dfence()} {
		rules.Apply(s, op)
	}
	for _, e := range s.Shadow() {
		if e.HasFI {
			t.Fatalf("HOPS shadow has a flush interval at [0x%x,0x%x)", e.Lo, e.Hi)
		}
	}
}

// TestEpochDiffersFromHOPS: a plain fence drains under the epoch model
// but an ofence does not drain under HOPS — the two relaxed models are
// genuinely different rule sets.
func TestEpochDiffersFromHOPS(t *testing.T) {
	tr := mk(write(0x10, 8), ofence(), isPersist(0x10, 8))
	if r := CheckTrace(HOPS{}, tr); r.Fails() != 1 {
		t.Fatalf("HOPS ofence must not drain: %s", r.Summary())
	}
	if r := CheckTrace(Epoch{}, tr); r.Fails() != 0 {
		t.Fatalf("epoch barrier must drain: %s", r.Summary())
	}
}

// TestX86NestedCheckerScopes: a second TxCheckerStart while one is active
// warns but checking continues.
func TestX86NestedCheckerScopes(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		txCheckStart(),
		txCheckStart(),
		txBegin(),
		txAdd(0x100, 8),
		write(0x100, 8),
		flush(0x100, 8),
		fence(),
		txEnd(),
		txCheckEnd(),
	))
	if !r.HasCode(CodeUnbalancedTx) {
		t.Fatalf("nested checker scope must warn: %s", r.Summary())
	}
	if r.Fails() != 0 {
		t.Fatalf("checking should continue cleanly: %s", r.Summary())
	}
}

// TestWriteNTThenFlushWarnsDuplicate: an explicit clwb after a
// non-temporal store is redundant (the NT store already queued its
// writeback).
func TestWriteNTThenFlushWarnsDuplicate(t *testing.T) {
	r := CheckTrace(X86{}, mk(
		trace.Op{Kind: trace.KindWriteNT, Addr: 0x10, Size: 8},
		flush(0x10, 8),
	))
	if !r.HasCode(CodeDuplicateWriteback) {
		t.Fatalf("clwb after NT store must warn: %s", r.Summary())
	}
}

// TestDiagnosticsCap: a pathological trace (one bug repeated endlessly)
// truncates at the cap with an explanatory INFO diagnostic, instead of
// ballooning the report.
func TestDiagnosticsCap(t *testing.T) {
	var ops []trace.Op
	for i := 0; i < 3000; i++ {
		ops = append(ops, flush(0x10, 8)) // unnecessary-writeback each time
	}
	r := CheckTrace(X86{}, mk(ops...))
	if len(r.Diags) > maxDiagsPerTrace+1 {
		t.Fatalf("diags = %d, want <= %d+1", len(r.Diags), maxDiagsPerTrace)
	}
	if !r.HasCode(CodeTruncated) {
		t.Fatal("missing truncation note")
	}
	if r.Ops != 3000 {
		t.Fatalf("Ops = %d, want 3000", r.Ops)
	}
}

// TestReportOpsCounted: reports carry the checked op count.
func TestReportOpsCounted(t *testing.T) {
	r := CheckTrace(X86{}, mk(write(0x10, 8), flush(0x10, 8), fence()))
	if r.Ops != 3 {
		t.Fatalf("Ops = %d, want 3", r.Ops)
	}
}

// TestARMModelMatchesX86Semantics: DC CVAP + DSB map onto the same
// interval rules as clwb + sfence; only the model name differs.
func TestARMModelMatchesX86Semantics(t *testing.T) {
	tr := mk(
		write(0x10, 64),
		flush(0x10, 64), // DC CVAP
		fence(),         // DSB
		write(0x50, 64),
		isPersist(0x10, 64),
		isPersist(0x50, 64),
		isOrdered(0x10, 64, 0x50, 64),
	)
	x86 := CheckTrace(X86{}, tr)
	arm := CheckTrace(ARM{}, tr)
	if x86.Fails() != arm.Fails() || x86.Warns() != arm.Warns() {
		t.Fatalf("ARM diverged from x86:\n%s\nvs\n%s", arm.Summary(), x86.Summary())
	}
	if (ARM{}).Name() != "arm" {
		t.Fatal("wrong model name")
	}
	if _, ok := Models()["arm"]; !ok {
		t.Fatal("arm missing from registry")
	}
}
