//go:build !race

package core

import (
	"testing"

	"pmtest/internal/trace"
)

// cleanStripedOps builds a clean section whose lines spread across 4 KiB
// chunks, so every stripe of a 4-way checker receives work.
func cleanStripedOps(writes int) []trace.Op {
	ops := []trace.Op{{Kind: trace.KindTxCheckerStart}, {Kind: trace.KindTxBegin}}
	for i := 0; i < writes; i++ {
		addr := uint64(i) * 4096
		ops = append(ops,
			trace.Op{Kind: trace.KindTxAdd, Addr: addr, Size: 64},
			trace.Op{Kind: trace.KindWrite, Addr: addr, Size: 64},
			trace.Op{Kind: trace.KindFlush, Addr: addr, Size: 64})
	}
	return append(ops, trace.Op{Kind: trace.KindFence},
		trace.Op{Kind: trace.KindTxEnd}, trace.Op{Kind: trace.KindTxCheckerEnd})
}

// TestShardedCheckAllocCeiling pins the steady-state allocation cost of
// the stripe path: routing ops into warm per-stripe index lists, the
// phase dispatch, per-stripe checking against pooled trees, GC, and the
// clean-path merge must all be allocation-free once the checker is warm.
// The ceiling tolerates runtime noise (a GC mid-measurement migrating a
// goroutine stack) while failing loudly on any real per-op regression:
// at 256 writes per section even 1 alloc/op would cost ~770.
func TestShardedCheckAllocCeiling(t *testing.T) {
	tr := &trace.Trace{Ops: cleanStripedOps(256)}
	c := NewShardedChecker(X86{}, Config{Shards: 4, EpochGC: true})
	defer c.Close()
	// Warm: grows index lists, tree freelists and GC scratch to capacity.
	for i := 0; i < 4; i++ {
		rep, stats := c.Check(tr, nil)
		if !rep.Clean() || !stats.Sharded {
			t.Fatalf("warmup: clean=%v sharded=%v", rep.Clean(), stats.Sharded)
		}
	}
	const ceiling = 16.0
	allocs := testing.AllocsPerRun(100, func() {
		rep, _ := c.Check(tr, nil)
		if !rep.Clean() {
			t.Fatal("clean striped section flagged")
		}
	})
	if allocs > ceiling {
		t.Fatalf("warm sharded Check on a clean 256-write section: %.1f allocs, ceiling %v",
			allocs, ceiling)
	}
}
