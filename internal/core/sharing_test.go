package core

import (
	"reflect"
	"testing"

	"pmtest/internal/trace"
)

func feed(a *SharingAnalyzer, thread int, ops ...trace.Op) {
	a.Feed(&trace.Trace{Thread: thread, Ops: ops})
}

func TestSharingNoOverlap(t *testing.T) {
	a := NewSharingAnalyzer(nil)
	feed(a, 0, write(0x000, 64))
	feed(a, 1, write(0x100, 64))
	feed(a, 2, write(0x200, 64))
	if got := a.Shared(); got != nil {
		t.Fatalf("Shared = %v, want none", got)
	}
}

func TestSharingDetectsOverlap(t *testing.T) {
	a := NewSharingAnalyzer(nil)
	feed(a, 0, write(0x100, 64))
	feed(a, 1, write(0x120, 64)) // overlaps [0x120,0x140)
	got := a.Shared()
	want := []SharedRange{{Addr: 0x120, Size: 32, Threads: []int{0, 1}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Shared = %v, want %v", got, want)
	}
}

func TestSharingThreeThreads(t *testing.T) {
	a := NewSharingAnalyzer(nil)
	for th := 0; th < 3; th++ {
		feed(a, th, write(0x100, 8))
	}
	got := a.Shared()
	if len(got) != 1 || !reflect.DeepEqual(got[0].Threads, []int{0, 1, 2}) {
		t.Fatalf("Shared = %v", got)
	}
}

func TestSharingSameThreadRepeatIsFine(t *testing.T) {
	a := NewSharingAnalyzer(nil)
	feed(a, 0, write(0x100, 64))
	feed(a, 0, write(0x100, 64))
	feed(a, 0, write(0x120, 8))
	if got := a.Shared(); got != nil {
		t.Fatalf("one thread rewriting its own data flagged: %v", got)
	}
}

func TestSharingStaticExclusion(t *testing.T) {
	a := NewSharingAnalyzer([]Range{{Addr: 0, Size: 0x1000}})
	feed(a, 0, write(0x100, 64)) // inside the excluded metadata
	feed(a, 1, write(0x100, 64))
	if got := a.Shared(); got != nil {
		t.Fatalf("excluded metadata flagged: %v", got)
	}
	feed(a, 0, write(0x2000, 8))
	feed(a, 1, write(0x2000, 8))
	if got := a.Shared(); len(got) != 1 {
		t.Fatalf("non-excluded sharing missed: %v", got)
	}
}

func TestSharingTraceExcludeOp(t *testing.T) {
	a := NewSharingAnalyzer(nil)
	feed(a, 0, exclude(0x100, 0x100), write(0x140, 8))
	feed(a, 1, write(0x140, 8))
	if got := a.Shared(); got != nil {
		t.Fatalf("range excluded by trace op flagged: %v", got)
	}
}

func TestSharingMergesContiguous(t *testing.T) {
	a := NewSharingAnalyzer(nil)
	feed(a, 0, write(0x100, 64), write(0x140, 64))
	feed(a, 1, write(0x100, 128))
	got := a.Shared()
	want := []SharedRange{{Addr: 0x100, Size: 128, Threads: []int{0, 1}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Shared = %v, want %v", got, want)
	}
}

func TestSharedRangeString(t *testing.T) {
	s := SharedRange{Addr: 0x10, Size: 0x20, Threads: []int{1, 3}}
	if s.String() != "[0x10,0x30) written by threads [1 3]" {
		t.Fatalf("String = %q", s.String())
	}
}
