package core

import (
	"fmt"
	"sort"
	"sync"

	"pmtest/internal/trace"
)

// Range is an address range excluded from checking for a whole session.
type Range struct {
	Addr, Size uint64
}

// CheckTrace runs the checking rules over one trace and returns its
// report. It is a pure function of (rules, trace); the worker pool and the
// inline-ablation benchmark both call it.
func CheckTrace(rules RuleSet, t *trace.Trace) Report {
	return CheckTraceExcluding(rules, t, nil)
}

// maxDiagsPerTrace caps diagnostics per trace so a pathological trace (a
// bug repeated in a hot loop) cannot balloon the report; the cap is noted
// in the final diagnostic.
const maxDiagsPerTrace = 1000

// CheckTraceExcluding is CheckTrace with session-wide static exclusions
// seeded into the fresh state of every trace (library metadata regions —
// undo logs, allocator headers — are excluded for the whole run rather
// than re-announced in each trace section).
func CheckTraceExcluding(rules RuleSet, t *trace.Trace, excludes []Range) Report {
	s := NewState()
	for _, r := range excludes {
		s.Excluded.Set(r.Addr, r.Addr+r.Size, struct{}{})
	}
	for i, op := range t.Ops {
		s.opIndex = i
		rules.Apply(s, op)
		if len(s.diags) >= maxDiagsPerTrace {
			s.diags = append(s.diags, Diagnostic{
				Severity: SeverityInfo,
				Code:     CodeTruncated,
				Message: fmt.Sprintf("diagnostics capped at %d; %d of %d ops checked",
					maxDiagsPerTrace, i+1, len(t.Ops)),
				Site:    "?",
				OpIndex: i,
			})
			break
		}
	}
	if s.TxCheckActive {
		s.report(SeverityWarn, CodeUnbalancedTx, "?", "",
			"trace ended with an open TX_CHECKER scope")
	}
	return Report{TraceID: t.ID, Thread: t.Thread, Ops: len(t.Ops), Diags: s.diags}
}

// trackOnly walks the trace without applying rules. It models the
// "PMTest Framework" bar of Fig. 10b: the cost of tracking and shipping
// operations without validating any checkers.
func trackOnly(t *trace.Trace) Report {
	n := 0
	for _, op := range t.Ops {
		if !op.Kind.IsChecker() {
			n++
		}
	}
	_ = n
	return Report{TraceID: t.ID, Thread: t.Thread, Ops: len(t.Ops)}
}

// Options configures an Engine.
type Options struct {
	// Rules selects the persistency model; defaults to X86.
	Rules RuleSet
	// Workers is the number of checking worker threads (paper §4.4,
	// Fig. 8); defaults to 1 as in the paper's evaluation (§6.1).
	Workers int
	// TrackOnly disables checker validation, leaving only operation
	// tracking. Used to separate framework overhead from checking
	// overhead (Fig. 10b).
	TrackOnly bool
	// QueueDepth bounds each worker's task queue; Submit blocks when the
	// queue is full, applying back-pressure like the paper's kernel FIFO.
	QueueDepth int
	// StaticExcludes are ranges excluded from checking in every trace.
	StaticExcludes []Range
}

func (o Options) withDefaults() Options {
	if o.Rules == nil {
		o.Rules = X86{}
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	return o
}

// Engine is the PMTest checking engine: a master that dispatches incoming
// traces round-robin to a pool of worker goroutines, each of which checks
// its traces independently and posts results back (paper Fig. 8). The
// program under test runs concurrently with checking; GetResult-style
// synchronization is provided by Wait.
type Engine struct {
	opts    Options
	queues  []chan *trace.Trace
	next    int
	nextID  int
	pending sync.WaitGroup
	done    sync.WaitGroup

	mu      sync.Mutex
	reports []Report
	closed  bool
}

// NewEngine starts the worker pool and returns the engine.
func NewEngine(opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{opts: opts}
	e.queues = make([]chan *trace.Trace, opts.Workers)
	for i := range e.queues {
		q := make(chan *trace.Trace, opts.QueueDepth)
		e.queues[i] = q
		e.done.Add(1)
		go e.worker(q)
	}
	return e
}

func (e *Engine) worker(q <-chan *trace.Trace) {
	defer e.done.Done()
	for t := range q {
		var r Report
		if e.opts.TrackOnly {
			r = trackOnly(t)
		} else {
			r = CheckTraceExcluding(e.opts.Rules, t, e.opts.StaticExcludes)
		}
		e.mu.Lock()
		e.reports = append(e.reports, r)
		e.mu.Unlock()
		e.pending.Done()
	}
}

// Submit hands a trace to the engine (PMTest_SEND_TRACE). The master
// thread dispatches traces to workers round-robin (§4.4). Submit may block
// briefly when the chosen worker's queue is full.
func (e *Engine) Submit(t *trace.Trace) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		panic("core: Submit after Close")
	}
	t.ID = e.nextID
	e.nextID++
	w := e.next
	e.next = (e.next + 1) % len(e.queues)
	e.pending.Add(1)
	e.mu.Unlock()
	e.queues[w] <- t
}

// Wait blocks until every submitted trace has been checked
// (PMTest_GET_RESULT) and returns all reports so far in trace order.
func (e *Engine) Wait() []Report {
	e.pending.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	sort.Slice(e.reports, func(i, j int) bool {
		return e.reports[i].TraceID < e.reports[j].TraceID
	})
	out := make([]Report, len(e.reports))
	copy(out, e.reports)
	return out
}

// Close drains outstanding work and stops the workers (PMTest_EXIT). The
// engine must not be used afterwards. Close returns the final reports.
func (e *Engine) Close() []Report {
	reports := e.Wait()
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		for _, q := range e.queues {
			close(q)
		}
	}
	e.mu.Unlock()
	e.done.Wait()
	return reports
}

// Summarize renders a compact multi-line summary of all reports.
func Summarize(reports []Report) string {
	fails, warns, traces := 0, 0, len(reports)
	for _, r := range reports {
		fails += r.Fails()
		warns += r.Warns()
	}
	s := fmt.Sprintf("%d traces checked: %d FAIL, %d WARN\n", traces, fails, warns)
	for _, r := range reports {
		if !r.Clean() {
			s += r.Summary()
		}
	}
	return s
}
