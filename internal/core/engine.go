package core

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pmtest/internal/obs"
	"pmtest/internal/trace"
)

// Range is an address range excluded from checking for a whole session.
type Range struct {
	Addr, Size uint64
}

// CheckTrace runs the checking rules over one trace and returns its
// report. It is a pure function of (rules, trace); the worker pool and the
// inline-ablation benchmark both call it.
func CheckTrace(rules RuleSet, t *trace.Trace) Report {
	return CheckTraceExcluding(rules, t, nil)
}

// maxDiagsPerTrace caps diagnostics per trace so a pathological trace (a
// bug repeated in a hot loop) cannot balloon the report; the cap is noted
// in the final diagnostic.
const maxDiagsPerTrace = 1000

// statePool recycles checking states across traces. A trace still gets a
// logically fresh shadow memory (§4.4) — Reset restores the pristine
// condition — but the State allocation, its four interval trees, their
// node freelists and the scratch buffers are all reused, which removes
// the dominant per-trace allocation cost on the checking hot path.
var statePool = sync.Pool{New: func() any { statePoolMisses.Add(1); return NewState() }}

// Pool and shadow-memory accounting for the observability plane. The
// counters are process-global like the pool itself: two atomic adds per
// checked trace, nothing on the per-op path.
var (
	statePoolGets   atomic.Uint64
	statePoolMisses atomic.Uint64
	// shadowIntervalsLast/Max track the interval population of the most
	// recently checked trace's shadow memory and its high-water mark —
	// the "is shadow memory growing without bound?" gauge a long-lived
	// session needs.
	shadowIntervalsLast atomic.Uint64
	shadowIntervalsMax  atomic.Uint64
)

// ResourceStats reports checking-tier resource accounting for the
// observability snapshot: state-pool hit/miss traffic and live
// shadow-memory interval counts. Sessions wire it into their metrics
// registry via obs.(*Metrics).SetResourceFn.
func ResourceStats() obs.Resources {
	gets, misses := statePoolGets.Load(), statePoolMisses.Load()
	r := obs.Resources{
		StatePoolGets:       gets,
		StatePoolMisses:     misses,
		ShadowIntervalsLive: shadowIntervalsLast.Load(),
		ShadowIntervalsMax:  shadowIntervalsMax.Load(),
		GCRetiredIntervals:  gcRetiredTotal.Load(),
	}
	if gets > 0 {
		r.StatePoolHitRate = float64(gets-misses) / float64(gets)
	}
	return r
}

// recordShadowStats publishes the interval population of a just-checked
// state before it is Reset for the pool.
func recordShadowStats(s *State) {
	n := uint64(s.Mem.Len() + s.Log.Len() + s.Written.Len() + s.Excluded.Len())
	recordShadowPeak(n)
}

// recordShadowPeak publishes a shadow-memory interval population sample
// (the sharded path reports its summed per-stripe peak here).
func recordShadowPeak(n uint64) {
	shadowIntervalsLast.Store(n)
	for {
		old := shadowIntervalsMax.Load()
		if n <= old || shadowIntervalsMax.CompareAndSwap(old, n) {
			return
		}
	}
}

// CheckTraceExcluding is CheckTrace with session-wide static exclusions
// seeded into the fresh state of every trace (library metadata regions —
// undo logs, allocator headers — are excluded for the whole run rather
// than re-announced in each trace section).
//
// The checking state is drawn from an internal pool; CheckTraceInto is
// the same computation against a caller-managed State.
func CheckTraceExcluding(rules RuleSet, t *trace.Trace, excludes []Range) Report {
	statePoolGets.Add(1)
	s := statePool.Get().(*State)
	rep := CheckTraceInto(s, rules, t, excludes)
	recordShadowStats(s)
	s.Reset() // detaches rep's diagnostics before the state is reused
	statePool.Put(s)
	return rep
}

// CheckTraceInto runs the checking rules over t using s, which must be
// freshly constructed or Reset. The returned Report owns the accumulated
// diagnostics slice; s may be Reset and reused afterwards.
//
// A panic inside the checking rules — a hostile trace, a malformed op, a
// buggy custom RuleSet — is recovered into a CodeCheckerPanic diagnostic
// and the report produced so far is returned, so one poisoned trace
// cannot kill the engine's worker (or the whole process).
func CheckTraceInto(s *State, rules RuleSet, t *trace.Trace, excludes []Range) (rep Report) {
	tracked := 0
	defer func() {
		if r := recover(); r != nil {
			op := trace.Op{}
			if s.opIndex < len(t.Ops) {
				op = t.Ops[s.opIndex]
			}
			s.diags = append(s.diags, Diagnostic{
				Severity: SeverityFail,
				Code:     CodeCheckerPanic,
				Message: fmt.Sprintf("checking rules panicked at op %d (%s): %v; %d of %d ops checked",
					s.opIndex, op, r, s.opIndex, len(t.Ops)),
				Site:    opSite(op),
				OpIndex: s.opIndex,
			})
			rep = Report{TraceID: t.ID, Thread: t.Thread, Ops: len(t.Ops),
				TrackedOps: tracked, Diags: s.diags}
		}
	}()
	for _, r := range excludes {
		s.Excluded.Set(r.Addr, r.Addr+r.Size, struct{}{})
	}
	for i, op := range t.Ops {
		if !op.Kind.IsChecker() {
			tracked++
		}
		s.opIndex = i
		rules.Apply(s, op)
		if len(s.diags) >= maxDiagsPerTrace {
			s.diags = append(s.diags, Diagnostic{
				Severity: SeverityInfo,
				Code:     CodeTruncated,
				Message: fmt.Sprintf("diagnostics capped at %d; %d of %d ops checked",
					maxDiagsPerTrace, i+1, len(t.Ops)),
				Site:    "?",
				OpIndex: i,
			})
			break
		}
	}
	if s.TxCheckActive {
		s.report(SeverityWarn, CodeUnbalancedTx, "?", "",
			"trace ended with an open TX_CHECKER scope")
	}
	return Report{TraceID: t.ID, Thread: t.Thread, Ops: len(t.Ops), TrackedOps: tracked, Diags: s.diags}
}

// trackOnly walks the trace without applying rules. It models the
// "PMTest Framework" bar of Fig. 10b: the cost of tracking and shipping
// operations without validating any checkers. The non-checker op count is
// carried in the report so track-only runs still measure real work.
func trackOnly(t *trace.Trace) Report {
	n := 0
	for _, op := range t.Ops {
		if !op.Kind.IsChecker() {
			n++
		}
	}
	return Report{TraceID: t.ID, Thread: t.Thread, Ops: len(t.Ops), TrackedOps: n}
}

// Options configures an Engine.
type Options struct {
	// Rules selects the persistency model; defaults to X86.
	Rules RuleSet
	// Workers is the number of checking worker threads (paper §4.4,
	// Fig. 8); defaults to 1 as in the paper's evaluation (§6.1).
	Workers int
	// TrackOnly disables checker validation, leaving only operation
	// tracking. Used to separate framework overhead from checking
	// overhead (Fig. 10b).
	TrackOnly bool
	// QueueDepth bounds each worker's task queue; Submit blocks when the
	// queue is full, applying back-pressure like the paper's kernel FIFO.
	QueueDepth int
	// StaticExcludes are ranges excluded from checking in every trace.
	StaticExcludes []Range
	// Check configures the sharded streaming checker and its epoch GC.
	// The zero value keeps the pooled single-state path; Shards > 1 gives
	// each worker its own ShardedChecker with byte-identical reports.
	Check Config
	// Observer, when non-nil, receives per-trace lifecycle events
	// (submit, dequeue, checked) plus backpressure stalls. When nil the
	// engine takes no timestamps and the hot path is identical to the
	// uninstrumented one.
	Observer obs.Observer
	// Logger, when non-nil, receives structured engine log records:
	// flagged traces at Warn, per-trace completions at Debug (gated by
	// the handler's level, so a quiet logger costs one Enabled check per
	// trace). Records carry trace_id/span_id/worker, correlating log
	// lines with flight spans.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Rules == nil {
		o.Rules = X86{}
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	o.Check = o.Check.withDefaults()
	return o
}

// task is one queued unit of checking work. enq carries the submit
// timestamp for queue-wait measurement; it is zero when no observer is
// installed.
type task struct {
	tr  *trace.Trace
	enq time.Time
}

// Engine is the PMTest checking engine: a master that dispatches incoming
// traces round-robin to a pool of worker goroutines, each of which checks
// its traces independently and posts results back (paper Fig. 8). The
// program under test runs concurrently with checking; GetResult-style
// synchronization is provided by Wait.
type Engine struct {
	opts   Options
	queues []chan task
	done   sync.WaitGroup
	// checkers holds one ShardedChecker per worker when Options.Check is
	// active (striping and/or epoch GC); nil otherwise.
	checkers []*ShardedChecker

	mu        sync.Mutex
	idle      sync.Cond // signaled when completed catches up to submitted
	next      int
	nextID    int
	submitted int
	completed int
	reports   []Report
	closed    bool
}

// NewEngine starts the worker pool and returns the engine.
func NewEngine(opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{opts: opts}
	e.idle.L = &e.mu
	if opts.Check.active() && !opts.TrackOnly {
		e.checkers = make([]*ShardedChecker, opts.Workers)
		for i := range e.checkers {
			e.checkers[i] = NewShardedChecker(opts.Rules, opts.Check)
			e.checkers[i].Timed = opts.Observer != nil
		}
	}
	e.queues = make([]chan task, opts.Workers)
	for i := range e.queues {
		q := make(chan task, opts.QueueDepth)
		e.queues[i] = q
		e.done.Add(1)
		go e.worker(i, q)
	}
	return e
}

func (e *Engine) worker(id int, q <-chan task) {
	defer e.done.Done()
	ob := e.opts.Observer
	lg := e.opts.Logger
	for tk := range q {
		t := tk.tr
		var start time.Time
		if ob != nil {
			start = time.Now()
			ob.TraceDequeued(t.ID, id, start.Sub(tk.enq))
		}
		var r Report
		var stats CheckStats
		switch {
		case e.opts.TrackOnly:
			r = trackOnly(t)
		case e.checkers != nil:
			r, stats = e.checkers[id].Check(t, e.opts.StaticExcludes)
			recordShadowPeak(uint64(stats.PeakIntervals))
		default:
			r = CheckTraceExcluding(e.opts.Rules, t, e.opts.StaticExcludes)
		}
		if ob != nil {
			ev := ReportEvent(t, r, id, start.Sub(tk.enq), time.Since(start))
			if stats.StripeDurs != nil {
				// Copy: the checker reuses the slice on its next trace,
				// and the event outlives this iteration in the recent ring.
				ev.StripeDurs = append([]time.Duration(nil), stats.StripeDurs...)
			}
			ob.TraceChecked(ev)
		}
		if lg != nil {
			e.logTrace(lg, t, r, id)
		}
		e.mu.Lock()
		e.reports = append(e.reports, r)
		e.completed++
		if e.completed == e.submitted {
			e.idle.Broadcast()
		}
		e.mu.Unlock()
	}
}

// logTrace emits the structured record for one checked trace: flagged
// traces at Warn (with the first finding inline), clean ones at Debug.
// span_id ties the record to the section's flight span, so a log line
// found by grep leads straight to the timeline.
func (e *Engine) logTrace(lg *slog.Logger, t *trace.Trace, r Report, worker int) {
	fails, warns := r.Fails(), r.Warns()
	level := slog.LevelDebug
	msg := "trace checked"
	if fails > 0 {
		level, msg = slog.LevelWarn, "trace flagged"
	}
	if !lg.Enabled(context.Background(), level) {
		return
	}
	attrs := []any{
		"trace_id", t.ID, "thread", t.Thread, "worker", worker,
		"ops", len(t.Ops), "fails", fails, "warns", warns,
	}
	if t.SpanID != 0 {
		attrs = append(attrs, "span_id", t.SpanID)
	}
	if t.RemoteSession != "" {
		// Node-side check of a remotely recorded section: carry the
		// client's identity so one grep joins client and node logs.
		attrs = append(attrs, "remote_session_id", t.RemoteSession, "remote_span_id", t.RemoteSpan)
	}
	if fails > 0 {
		for _, d := range r.Diags {
			if d.Severity == SeverityFail {
				attrs = append(attrs, "code", string(d.Code), "finding", d.Message, "site", d.Site)
				break
			}
		}
	}
	lg.Log(context.Background(), level, msg, attrs...)
}

// ReportEvent builds the observer event for a checked trace: counters,
// the section's span identity, and — only when the trace is not clean —
// the detailed diagnostics, so the clean path allocates nothing. The
// engine worker emits one per trace; synchronous checkers (bugdb, the
// inline ablation) can build the same event for their own observers.
func ReportEvent(t *trace.Trace, r Report, worker int, queueWait, checkDur time.Duration) obs.TraceEvent {
	ev := obs.TraceEvent{
		TraceID:    t.ID,
		Thread:     t.Thread,
		Worker:     worker,
		Ops:        r.Ops,
		TrackedOps: r.TrackedOps,
		QueueWait:  queueWait,
		CheckDur:   checkDur,
		SpanID:     t.SpanID,
		TxSpans:    t.TxSpans,

		RemoteSession: t.RemoteSession,
		RemoteSpan:    t.RemoteSpan,
	}
	if len(r.Diags) == 0 {
		return ev
	}
	ev.Codes = make(map[string]int)
	ev.Diags = make([]obs.DiagInfo, len(r.Diags))
	for i, d := range r.Diags {
		switch d.Severity {
		case SeverityFail:
			ev.Fails++
		case SeverityWarn:
			ev.Warns++
		default:
			ev.Infos++
		}
		ev.Codes[string(d.Code)]++
		ev.Diags[i] = obs.DiagInfo{
			Severity: d.Severity.String(),
			Code:     string(d.Code),
			OpIndex:  d.OpIndex,
			Message:  d.Message,
			Site:     d.Site,
		}
	}
	return ev
}

// Submit hands a trace to the engine (PMTest_SEND_TRACE). The master
// thread dispatches traces to workers round-robin (§4.4). Submit may block
// briefly when the chosen worker's queue is full.
func (e *Engine) Submit(t *trace.Trace) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		panic("core: Submit after Close")
	}
	t.ID = e.nextID
	e.nextID++
	w := e.next
	e.next = (e.next + 1) % len(e.queues)
	e.submitted++
	e.mu.Unlock()

	ob := e.opts.Observer
	if ob == nil {
		e.queues[w] <- task{tr: t}
		return
	}
	ob.TraceSubmitted(t.ID, t.Thread, len(t.Ops))
	tk := task{tr: t, enq: time.Now()}
	select {
	case e.queues[w] <- tk:
	default:
		// The queue is full: measure the backpressure stall.
		stallStart := time.Now()
		e.queues[w] <- tk
		if so, ok := ob.(obs.StallObserver); ok {
			so.SubmitStalled(w, time.Since(stallStart))
		}
	}
}

// QueueDepths returns the number of traces currently queued per worker —
// the live dispatch-imbalance gauge exported by the observability
// endpoint.
func (e *Engine) QueueDepths() []int {
	depths := make([]int, len(e.queues))
	for i, q := range e.queues {
		depths[i] = len(q)
	}
	return depths
}

// StripeDepths returns the live number of ops assigned to each address
// stripe, summed across the engine's workers — the sharded counterpart
// of QueueDepths. Nil when the engine checks serially.
func (e *Engine) StripeDepths() []int64 {
	if e.checkers == nil || !e.opts.Check.Sharded() {
		return nil
	}
	out := make([]int64, e.opts.Check.Shards)
	for _, ck := range e.checkers {
		ck.AddStripeDepths(out)
	}
	return out
}

// Wait blocks until every submitted trace has been checked
// (PMTest_GET_RESULT) and returns all reports so far in trace order.
// It is safe to call concurrently with Submit; it waits for the traces
// submitted before it observed the engine idle.
func (e *Engine) Wait() []Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.completed < e.submitted {
		e.idle.Wait()
	}
	sort.Slice(e.reports, func(i, j int) bool {
		return e.reports[i].TraceID < e.reports[j].TraceID
	})
	out := make([]Report, len(e.reports))
	copy(out, e.reports)
	return out
}

// Close drains outstanding work and stops the workers (PMTest_EXIT). The
// engine must not be used afterwards. Close returns the final reports.
func (e *Engine) Close() []Report {
	reports := e.Wait()
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		for _, q := range e.queues {
			close(q)
		}
	}
	e.mu.Unlock()
	e.done.Wait()
	for _, ck := range e.checkers {
		ck.Close()
	}
	return reports
}

// Summarize renders a compact multi-line summary of all reports.
func Summarize(reports []Report) string {
	fails, warns, traces := 0, 0, len(reports)
	for _, r := range reports {
		fails += r.Fails()
		warns += r.Warns()
	}
	s := fmt.Sprintf("%d traces checked: %d FAIL, %d WARN\n", traces, fails, warns)
	for _, r := range reports {
		if !r.Clean() {
			s += r.Summary()
		}
	}
	return s
}
