package core

import (
	"strings"
	"testing"

	"pmtest/internal/trace"
)

// panicRules panics when it meets a fence — a stand-in for a buggy custom
// RuleSet or a trace malformed enough to break interval arithmetic.
type panicRules struct{ X86 }

func (panicRules) Name() string { return "panic" }

func (p panicRules) Apply(s *State, op trace.Op) {
	if op.Kind == trace.KindFence {
		panic("rules exploded")
	}
	p.X86.Apply(s, op)
}

func poisonTrace() *trace.Trace {
	return &trace.Trace{Ops: []trace.Op{
		{Kind: trace.KindWrite, Addr: 0, Size: 8},
		{Kind: trace.KindFlush, Addr: 0, Size: 8},
		{Kind: trace.KindFence},
		{Kind: trace.KindWrite, Addr: 64, Size: 8},
	}}
}

// TestCheckerPanicBecomesDiagnostic: a panic inside the rules produces a
// stored checker-panic FAIL with the partial findings, not a crash.
func TestCheckerPanicBecomesDiagnostic(t *testing.T) {
	r := CheckTrace(panicRules{}, poisonTrace())
	if !r.HasCode(CodeCheckerPanic) {
		t.Fatalf("expected checker-panic diagnostic, got %v", r.Diags)
	}
	if r.Fails() == 0 {
		t.Fatal("checker panic must be FAIL severity")
	}
	var d Diagnostic
	for _, x := range r.Diags {
		if x.Code == CodeCheckerPanic {
			d = x
		}
	}
	if !strings.Contains(d.Message, "rules exploded") || !strings.Contains(d.Message, "op 2") {
		t.Fatalf("diagnostic lacks panic context: %q", d.Message)
	}
	if r.Ops != 4 {
		t.Fatalf("report lost trace metadata: %+v", r)
	}
}

// TestCheckerPanicAddressOverflow: a trace with addr+size wrapping around
// is the classic hostile input; whatever the rules do with it, the engine
// must return a report.
func TestCheckerPanicAddressOverflow(t *testing.T) {
	tr := &trace.Trace{Ops: []trace.Op{
		{Kind: trace.KindWrite, Addr: ^uint64(0) - 4, Size: 32},
		{Kind: trace.KindFlush, Addr: ^uint64(0) - 4, Size: 32},
		{Kind: trace.KindFence},
		{Kind: trace.KindIsPersist, Addr: ^uint64(0) - 4, Size: 32},
	}}
	_ = CheckTrace(X86{}, tr) // must not panic out
}

// TestEngineSurvivesCheckerPanic: workers recover, later traces still get
// checked, and Wait/Close complete normally.
func TestEngineSurvivesCheckerPanic(t *testing.T) {
	e := NewEngine(Options{Rules: panicRules{}, Workers: 2})
	e.Submit(poisonTrace())
	e.Submit(poisonTrace())
	// A trace the panicking rules can survive (no fence).
	e.Submit(&trace.Trace{Ops: []trace.Op{{Kind: trace.KindWrite, Addr: 0, Size: 8}}})
	reports := e.Close()
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(reports))
	}
	panics := 0
	for _, r := range reports {
		if r.HasCode(CodeCheckerPanic) {
			panics++
		}
	}
	if panics != 2 {
		t.Fatalf("%d checker-panic reports, want 2", panics)
	}
}
