package core

import (
	"fmt"
	"strings"
	"testing"

	"pmtest/internal/trace"
)

// renderReport serializes every externally visible field of a report —
// the byte-equality surface the sharded checker must preserve. The
// hidden merge key (Diagnostic.sortKey) is deliberately absent: it is
// not part of the report.
func renderReport(r Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace=%d thread=%d ops=%d tracked=%d\n",
		r.TraceID, r.Thread, r.Ops, r.TrackedOps)
	for _, d := range r.Diags {
		fmt.Fprintf(&b, "  op=%d %s\n", d.OpIndex, d.String())
	}
	return b.String()
}

// checkEquiv asserts the sharded report is byte-identical to the serial
// one and that the expected path (striped vs fallback) was taken.
func checkEquiv(t *testing.T, rules RuleSet, tr *trace.Trace, excludes []Range, cfg Config, wantSharded bool) {
	t.Helper()
	want := renderReport(CheckTraceExcluding(rules, tr, excludes))
	rep, stats := CheckTraceCfg(rules, tr, excludes, cfg)
	if got := renderReport(rep); got != want {
		t.Fatalf("sharded report diverges (%s, cfg %+v)\n--- serial ---\n%s--- sharded ---\n%s",
			rules.Name(), cfg, want, got)
	}
	if stats.Sharded != wantSharded {
		t.Errorf("stats.Sharded = %v, want %v (cfg %+v)", stats.Sharded, wantSharded, cfg)
	}
}

// shardCfgs is the matrix every equivalence test runs: varying stripe
// counts (including one exceeding the address spread) with small chunks
// so test addresses actually distribute.
var shardCfgs = []Config{
	{Shards: 2, ChunkBits: 8},
	{Shards: 4, ChunkBits: 8},
	{Shards: 7, ChunkBits: 8},
	{Shards: 4, ChunkBits: 8, EpochGC: true},
}

// chunkAddr places object i at a 64-byte-aligned address in chunk
// i%16 of the 256-byte chunk space, spreading ops across stripes.
func chunkAddr(i int) uint64 {
	return uint64(i%16)<<8 + uint64(i/16%4)*64
}

func equivTraces() map[string]*trace.Trace {
	traces := map[string]*trace.Trace{}

	// Clean transactional section: every line logged, written, flushed,
	// fenced — the hot path of the harness workloads.
	var ops []trace.Op
	ops = append(ops, trace.Op{Kind: trace.KindTxCheckerStart}, trace.Op{Kind: trace.KindTxBegin})
	for i := 0; i < 24; i++ {
		a := chunkAddr(i)
		ops = append(ops,
			trace.Op{Kind: trace.KindTxAdd, Addr: a, Size: 64},
			trace.Op{Kind: trace.KindWrite, Addr: a, Size: 64},
			trace.Op{Kind: trace.KindFlush, Addr: a, Size: 64})
	}
	ops = append(ops, trace.Op{Kind: trace.KindFence},
		trace.Op{Kind: trace.KindTxEnd}, trace.Op{Kind: trace.KindTxCheckerEnd})
	traces["clean-tx"] = &trace.Trace{Ops: ops}

	// Incomplete transaction: flushes dropped on a third of the lines,
	// so TX_CHECKER_END injects findings on several stripes at one op —
	// the address-order merge is load-bearing here.
	ops = nil
	ops = append(ops, trace.Op{Kind: trace.KindTxCheckerStart}, trace.Op{Kind: trace.KindTxBegin})
	for i := 0; i < 24; i++ {
		a := chunkAddr(i)
		ops = append(ops, trace.Op{Kind: trace.KindTxAdd, Addr: a, Size: 64},
			trace.Op{Kind: trace.KindWrite, Addr: a, Size: 64})
		if i%3 != 0 {
			ops = append(ops, trace.Op{Kind: trace.KindFlush, Addr: a, Size: 64})
		}
	}
	ops = append(ops, trace.Op{Kind: trace.KindFence},
		trace.Op{Kind: trace.KindTxEnd}, trace.Op{Kind: trace.KindTxCheckerEnd})
	traces["incomplete-tx"] = &trace.Trace{Ops: ops}

	// Missing undo-log backups on some lines (FAIL at the write op).
	ops = nil
	ops = append(ops, trace.Op{Kind: trace.KindTxCheckerStart}, trace.Op{Kind: trace.KindTxBegin})
	for i := 0; i < 16; i++ {
		a := chunkAddr(i)
		if i%4 != 1 {
			ops = append(ops, trace.Op{Kind: trace.KindTxAdd, Addr: a, Size: 64})
		}
		ops = append(ops, trace.Op{Kind: trace.KindWrite, Addr: a, Size: 64},
			trace.Op{Kind: trace.KindFlush, Addr: a, Size: 64})
	}
	ops = append(ops, trace.Op{Kind: trace.KindFence},
		trace.Op{Kind: trace.KindTxEnd}, trace.Op{Kind: trace.KindTxCheckerEnd})
	traces["missing-backup"] = &trace.Trace{Ops: ops}

	// Performance warnings: duplicate and unnecessary writebacks, plus a
	// duplicate undo-log entry.
	traces["writeback-warns"] = &trace.Trace{Ops: []trace.Op{
		{Kind: trace.KindTxCheckerStart},
		{Kind: trace.KindTxBegin},
		{Kind: trace.KindTxAdd, Addr: 0x100, Size: 64},
		{Kind: trace.KindTxAdd, Addr: 0x100, Size: 64}, // duplicate log
		{Kind: trace.KindWrite, Addr: 0x100, Size: 64},
		{Kind: trace.KindFlush, Addr: 0x100, Size: 64},
		{Kind: trace.KindFlush, Addr: 0x100, Size: 64}, // duplicate writeback
		{Kind: trace.KindFlush, Addr: 0x700, Size: 64}, // never written
		{Kind: trace.KindFence},
		{Kind: trace.KindTxEnd},
		{Kind: trace.KindTxCheckerEnd},
	}}

	// Unbalanced structure: stray ends, double start, trailing open
	// scope. These warnings are trace-global; exactly one stripe may
	// report them.
	traces["unbalanced"] = &trace.Trace{Ops: []trace.Op{
		{Kind: trace.KindTxEnd}, // end without begin
		{Kind: trace.KindTxCheckerEnd},
		{Kind: trace.KindTxCheckerStart},
		{Kind: trace.KindTxCheckerStart}, // double start
		{Kind: trace.KindWrite, Addr: 0x200, Size: 32},
		// trace ends inside the open checker scope
	}}

	// Unpersisted data caught by explicit checkers.
	traces["not-persisted"] = &trace.Trace{Ops: []trace.Op{
		{Kind: trace.KindWrite, Addr: 0x100, Size: 64},
		{Kind: trace.KindWrite, Addr: 0x300, Size: 64},
		{Kind: trace.KindFlush, Addr: 0x100, Size: 64},
		{Kind: trace.KindFence},
		{Kind: trace.KindIsPersist, Addr: 0x100, Size: 64}, // ok
		{Kind: trace.KindIsPersist, Addr: 0x300, Size: 64}, // FAIL
	}}

	// isOrderedBefore with cross-stripe operands, ordered and unordered.
	traces["ordered-cross"] = &trace.Trace{Ops: []trace.Op{
		{Kind: trace.KindWrite, Addr: 0x100, Size: 64},
		{Kind: trace.KindFlush, Addr: 0x100, Size: 64},
		{Kind: trace.KindFence},
		{Kind: trace.KindWrite, Addr: 0x900, Size: 64},
		{Kind: trace.KindFlush, Addr: 0x900, Size: 64},
		{Kind: trace.KindFence},
		{Kind: trace.KindIsOrderedBefore, Addr: 0x100, Size: 64, Addr2: 0x900, Size2: 64}, // ok
		{Kind: trace.KindIsOrderedBefore, Addr: 0x900, Size: 64, Addr2: 0x100, Size2: 64}, // FAIL
	}}

	// isOrderedBefore with both operands on one stripe plus an unordered
	// same-epoch pair.
	traces["ordered-local"] = &trace.Trace{Ops: []trace.Op{
		{Kind: trace.KindWrite, Addr: 0x100, Size: 32},
		{Kind: trace.KindWrite, Addr: 0x140, Size: 32},
		{Kind: trace.KindFlush, Addr: 0x100, Size: 32},
		{Kind: trace.KindFlush, Addr: 0x140, Size: 32},
		{Kind: trace.KindFence},
		{Kind: trace.KindIsOrderedBefore, Addr: 0x100, Size: 32, Addr2: 0x140, Size2: 32}, // same epoch: FAIL
	}}

	// Exclusion scope: a broadcast Exclude over a huge range mutes
	// findings; Include restores them.
	traces["exclude-include"] = &trace.Trace{Ops: []trace.Op{
		{Kind: trace.KindExclude, Addr: 0, Size: 1 << 30},
		{Kind: trace.KindWrite, Addr: 0x100, Size: 64},
		{Kind: trace.KindFlush, Addr: 0x100, Size: 64},
		{Kind: trace.KindFlush, Addr: 0x100, Size: 64}, // excluded: quiet
		{Kind: trace.KindInclude, Addr: 0, Size: 1 << 30},
		{Kind: trace.KindFlush, Addr: 0x100, Size: 64}, // now warns
		{Kind: trace.KindFence},
	}}

	// Degenerate shapes.
	traces["empty"] = &trace.Trace{Ops: nil}
	traces["fences-only"] = &trace.Trace{Ops: []trace.Op{
		{Kind: trace.KindFence}, {Kind: trace.KindOFence}, {Kind: trace.KindDFence},
	}}

	return traces
}

// TestShardedEquivalence proves the stripe path emits byte-identical
// reports across rule sets, stripe counts, and GC settings.
func TestShardedEquivalence(t *testing.T) {
	for name, tr := range equivTraces() {
		for _, rules := range []RuleSet{X86{}, HOPS{}, Epoch{}, ARM{}} {
			for _, cfg := range shardCfgs {
				t.Run(fmt.Sprintf("%s/%s/shards=%d-gc=%v", name, rules.Name(), cfg.Shards, cfg.EpochGC), func(t *testing.T) {
					checkEquiv(t, rules, tr, nil, cfg, true)
				})
			}
		}
	}
}

// TestShardedEquivalenceStaticExcludes seeds session-wide exclusions,
// which must replicate into every stripe.
func TestShardedEquivalenceStaticExcludes(t *testing.T) {
	tr := equivTraces()["writeback-warns"]
	excludes := []Range{{Addr: 0x700, Size: 64}}
	checkEquiv(t, X86{}, tr, excludes, Config{Shards: 4, ChunkBits: 8}, true)
}

// TestShardedTruncation drives the per-trace diagnostic cap: the merged
// truncation point, the cap diagnostic, the recomputed tracked-op count
// and the trailing open-scope warning must all match serial.
func TestShardedTruncation(t *testing.T) {
	var ops []trace.Op
	ops = append(ops, trace.Op{Kind: trace.KindTxCheckerStart})
	for i := 0; i < 1100; i++ {
		a := chunkAddr(i)
		ops = append(ops,
			trace.Op{Kind: trace.KindWrite, Addr: a, Size: 64},
			trace.Op{Kind: trace.KindFlush, Addr: a, Size: 64},
			trace.Op{Kind: trace.KindFlush, Addr: a, Size: 64}) // 1 warn per triple
	}
	// The scope never closes: serial reports the trailing warning at the
	// truncation op, which the merger must reconstruct by replay.
	tr := &trace.Trace{Ops: ops}
	for _, cfg := range shardCfgs {
		checkEquiv(t, X86{}, tr, nil, cfg, true)
	}
}

// TestShardedSpanningRangeCoarsens: a range crossing the configured
// chunk line has no single owning stripe at that granularity, so the
// planner coarsens the chunk size for the trace instead of giving up —
// the trace still runs striped and reports identically.
func TestShardedSpanningRangeCoarsens(t *testing.T) {
	ops := []trace.Op{
		{Kind: trace.KindWrite, Addr: 0xF0, Size: 64}, // crosses the 0x100 chunk line
		{Kind: trace.KindFlush, Addr: 0xF0, Size: 64},
	}
	// Enough single-chunk lines across coarsened chunks that multiple
	// stripes still get work at the widened granularity.
	for i := 0; i < 32; i++ {
		a := uint64(i) << 9 // one per 512 B chunk, the coarsened size
		ops = append(ops,
			trace.Op{Kind: trace.KindWrite, Addr: a, Size: 32},
			trace.Op{Kind: trace.KindFlush, Addr: a, Size: 32})
	}
	ops = append(ops, trace.Op{Kind: trace.KindFence},
		trace.Op{Kind: trace.KindIsPersist, Addr: 0xF0, Size: 64})
	tr := &trace.Trace{Ops: ops}
	checkEquiv(t, X86{}, tr, nil, Config{Shards: 4, ChunkBits: 8}, true)
}

// TestShardedFallbackGiantRange: an op spanning more than 1<<maxChunkBits
// bytes exceeds what coarsening will absorb; the whole trace must fall
// back to the serial path and still report identically.
func TestShardedFallbackGiantRange(t *testing.T) {
	tr := &trace.Trace{Ops: []trace.Op{
		{Kind: trace.KindWrite, Addr: 0xF0, Size: 1 << 25}, // 32 MiB, spans 16 MiB chunks
		{Kind: trace.KindFlush, Addr: 0xF0, Size: 1 << 25},
		{Kind: trace.KindFence},
		{Kind: trace.KindIsPersist, Addr: 0xF0, Size: 1 << 25},
	}}
	checkEquiv(t, X86{}, tr, nil, Config{Shards: 4, ChunkBits: 8}, false)
}

// customRules is a RuleSet the router does not know; it must force the
// serial path (its Apply could carry semantics the planner cannot see).
type customRules struct{ X86 }

func (customRules) Name() string { return "custom" }

func TestShardedFallbackCustomRules(t *testing.T) {
	tr := equivTraces()["clean-tx"]
	checkEquiv(t, customRules{}, tr, nil, Config{Shards: 4, ChunkBits: 8}, false)
}

// TestShardedChunkDefaults: the default 4 KiB chunks shard the harness
// address shapes (64-byte-aligned lines) without fallback.
func TestShardedChunkDefaults(t *testing.T) {
	var ops []trace.Op
	for i := 0; i < 64; i++ {
		a := uint64(i) * 4096 // one line per chunk → round-robin stripes
		ops = append(ops,
			trace.Op{Kind: trace.KindWrite, Addr: a, Size: 64},
			trace.Op{Kind: trace.KindFlush, Addr: a, Size: 64})
	}
	ops = append(ops, trace.Op{Kind: trace.KindFence})
	tr := &trace.Trace{Ops: ops}
	rep, stats := CheckTraceCfg(X86{}, tr, nil, Config{Shards: 4})
	if !stats.Sharded {
		t.Fatal("default chunking fell back to serial on aligned lines")
	}
	if !rep.Clean() {
		t.Fatalf("clean trace flagged: %s", renderReport(rep))
	}
}

// TestShardedCheckerReuse exercises one persistent checker across many
// traces (the engine-worker pattern): state must fully reset between
// traces and reports must stay identical throughout.
func TestShardedCheckerReuse(t *testing.T) {
	traces := equivTraces()
	names := []string{"clean-tx", "incomplete-tx", "unbalanced", "ordered-cross",
		"clean-tx", "writeback-warns", "empty", "not-persisted", "clean-tx"}
	c := NewShardedChecker(X86{}, Config{Shards: 4, ChunkBits: 8, EpochGC: true})
	defer c.Close()
	for round := 0; round < 3; round++ {
		for _, name := range names {
			tr := traces[name]
			want := renderReport(CheckTraceExcluding(X86{}, tr, nil))
			rep, _ := c.Check(tr, nil)
			if got := renderReport(rep); got != want {
				t.Fatalf("round %d %s: reused checker diverges\n--- serial ---\n%s--- sharded ---\n%s",
					round, name, want, got)
			}
		}
	}
}

// TestShardedPanicFallback: a rule-set panic under the configured
// checker must surface as the same CodeCheckerPanic report the serial
// checker produces, not kill the process. panicRules (panic_test.go) is
// a custom rule set, so this also pins the unknown-rules serial route.
func TestShardedPanicFallback(t *testing.T) {
	rep, stats := CheckTraceCfg(panicRules{}, poisonTrace(), nil, Config{Shards: 4, ChunkBits: 8})
	if stats.Sharded {
		t.Fatal("unknown rule set took the striped path")
	}
	if !rep.HasCode(CodeCheckerPanic) {
		t.Fatalf("panic not converted to diagnostic: %s", renderReport(rep))
	}
}

// TestStripeWorkerPanicRecovers drives the stripe-side recover directly
// (built-in rule sets never panic on any input — FuzzCheckTrace pins
// that — so the hook is exercised with an out-of-range command) and
// verifies the checker records the panic and stays usable afterwards.
func TestStripeWorkerPanicRecovers(t *testing.T) {
	c := NewShardedChecker(X86{}, Config{Shards: 2, ChunkBits: 8})
	defer c.Close()
	tr := &trace.Trace{Ops: []trace.Op{
		{Kind: trace.KindWrite, Addr: 0x100, Size: 64},
		{Kind: trace.KindFence},
	}}
	if !c.plan(tr.Ops) {
		t.Fatal("plan rejected a routable trace")
	}
	c.ops = tr.Ops
	c.runStripe(0, c.states[0], stripeCmd{from: 0, to: 1 << 20}) // out of range: panics inside
	if !c.panicked.Load() {
		t.Fatal("runStripe panic was not recorded")
	}
	rep, _ := c.Check(tr, nil)
	want := renderReport(CheckTraceExcluding(X86{}, tr, nil))
	if got := renderReport(rep); got != want {
		t.Fatalf("checker unusable after stripe panic\n--- serial ---\n%s--- got ---\n%s", want, got)
	}
}
