// Package core implements the PMTest checking engine (paper §4): the
// shadow memory that tracks persist and flush intervals for every modified
// address range, the checking rules that validate low- and high-level
// checkers against those intervals, and the master/worker pipeline that
// decouples checking from program execution.
package core

import (
	"fmt"
	"strings"

	"pmtest/internal/trace"
)

// Severity classifies a diagnostic. The paper's engine reports WARNING for
// performance bugs and FAIL for crash-consistency bugs (§4.1).
type Severity uint8

const (
	// SeverityInfo is used for advisory notes (not present in the paper;
	// used by extensions such as the nested-transaction explainer).
	SeverityInfo Severity = iota
	// SeverityWarn marks performance bugs: redundant writebacks,
	// duplicated undo-log entries.
	SeverityWarn
	// SeverityFail marks crash-consistency bugs: unpersisted data,
	// ordering violations, missing backups, incomplete transactions.
	SeverityFail
)

// String returns the paper's spelling of the severity.
func (s Severity) String() string {
	switch s {
	case SeverityWarn:
		return "WARN"
	case SeverityFail:
		return "FAIL"
	default:
		return "INFO"
	}
}

// Code identifies the class of bug a diagnostic reports.
type Code string

// Diagnostic codes. FAIL codes are crash-consistency bugs, WARN codes are
// performance bugs (paper §5.1).
const (
	// CodeNotPersisted: an isPersist checker found a persist interval that
	// never ends — the data may not be durable at the checker.
	CodeNotPersisted Code = "not-persisted"
	// CodeOrderViolation: an isOrderedBefore checker found overlapping (or
	// inverted) persist intervals — the two writes are not strictly ordered.
	CodeOrderViolation Code = "order-violation"
	// CodeMissingBackup: inside a checked transaction, a persistent object
	// was modified without first being added to the undo log (TX_ADD).
	CodeMissingBackup Code = "missing-backup"
	// CodeIncompleteTx: at TX_CHECKER_END, a range modified inside the
	// transaction was not persisted.
	CodeIncompleteTx Code = "incomplete-tx"
	// CodeDuplicateWriteback: a clwb targeted a range that already has a
	// pending or completed writeback since its last modification.
	CodeDuplicateWriteback Code = "duplicate-writeback"
	// CodeUnnecessaryWriteback: a clwb targeted a range that was never
	// modified — writing back unmodified data.
	CodeUnnecessaryWriteback Code = "unnecessary-writeback"
	// CodeDuplicateLog: the same persistent object was added to the undo
	// log more than once in one transaction.
	CodeDuplicateLog Code = "duplicate-log"
	// CodeUnbalancedTx: transaction begin/end or checker start/end pairs
	// did not nest properly in the trace.
	CodeUnbalancedTx Code = "unbalanced-tx"
	// CodeTruncated: the per-trace diagnostic cap was reached and the
	// remainder of the trace was not checked.
	CodeTruncated Code = "diagnostics-truncated"
	// CodeCheckerPanic: the checking rules panicked on this trace. The
	// engine converts the panic into this stored diagnostic instead of
	// killing the process, so a hostile or malformed trace produces a
	// partial report rather than taking down the run.
	CodeCheckerPanic Code = "checker-panic"
)

// Diagnostic is one finding, tied to the trace operation that exposed it.
type Diagnostic struct {
	Severity Severity
	Code     Code
	// Message is a human-readable explanation.
	Message string
	// Site is the file:line of the operation that triggered the finding
	// (the checker for FAILs, the redundant op for WARNs).
	Site string
	// Related is the file:line of the earlier operation involved, e.g. the
	// write that never persisted or the first of two duplicate flushes.
	Related string
	// OpIndex is the position in the trace of the triggering operation.
	OpIndex int

	// sortKey orders multiple diagnostics emitted by a single operation
	// (today only TX_CHECKER_END, which walks the written set in address
	// order). The sharded checker merges per-stripe diagnostics by
	// (OpIndex, sortKey), reproducing the serial emission order exactly.
	// Unexported: it never appears in String(), JSON, or golden output.
	sortKey uint64
}

// String formats the diagnostic the way the paper's engine prints results:
// "FAIL/WARN @<file>:<line>" plus the explanation.
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s] @%s: %s", d.Severity, d.Code, d.Site, d.Message)
	if d.Related != "" {
		fmt.Fprintf(&b, " (related: %s)", d.Related)
	}
	return b.String()
}

// Report is the checking result for one trace.
type Report struct {
	TraceID int
	Thread  int
	// Ops is the number of trace operations checked.
	Ops int
	// TrackedOps is the number of non-checker operations (writes,
	// writebacks, fences, transaction events) in the trace. TrackOnly
	// runs report it too, so framework-overhead measurements carry the
	// real volume of tracked work.
	TrackedOps int
	Diags      []Diagnostic
}

// Fails counts crash-consistency findings.
func (r Report) Fails() int { return r.countSev(SeverityFail) }

// Warns counts performance findings.
func (r Report) Warns() int { return r.countSev(SeverityWarn) }

func (r Report) countSev(s Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// HasCode reports whether any diagnostic carries the given code.
func (r Report) HasCode(c Code) bool {
	for _, d := range r.Diags {
		if d.Code == c {
			return true
		}
	}
	return false
}

// Clean reports whether the trace produced no findings at all.
func (r Report) Clean() bool { return len(r.Diags) == 0 }

// Summary renders all findings, one per line.
func (r Report) Summary() string {
	if r.Clean() {
		return fmt.Sprintf("trace %d: PASS", r.TraceID)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d: %d FAIL, %d WARN\n", r.TraceID, r.Fails(), r.Warns())
	for _, d := range r.Diags {
		fmt.Fprintf(&b, "  %s\n", d.String())
	}
	return b.String()
}

// MergeReports combines per-trace reports into one flat list of
// diagnostics, preserving trace order.
func MergeReports(reports []Report) []Diagnostic {
	var out []Diagnostic
	for _, r := range reports {
		out = append(out, r.Diags...)
	}
	return out
}

// CountCode tallies diagnostics with the given code across reports.
func CountCode(reports []Report, c Code) int {
	n := 0
	for _, r := range reports {
		for _, d := range r.Diags {
			if d.Code == c {
				n++
			}
		}
	}
	return n
}

// opSite is a helper to format a trace op's site for diagnostics.
func opSite(op trace.Op) string { return op.Site() }
