package core

import (
	"testing"

	"pmtest/internal/trace"
)

// gcState returns a fresh state with epoch GC on at the given lag.
func gcState(lag uint64) *State {
	s := NewState()
	s.gcOn = true
	s.gcLag = lag
	return s
}

func apply(s *State, rules RuleSet, ops ...trace.Op) {
	for i, op := range ops {
		s.opIndex = i
		rules.Apply(s, op)
	}
}

// TestGCNeverRetiresOpenInterval: a write that was never fenced keeps an
// open persist interval; no number of later fences may retire it — it is
// exactly what a future isPersist must still be able to fail on.
func TestGCNeverRetiresOpenInterval(t *testing.T) {
	s := gcState(2)
	ops := []trace.Op{{Kind: trace.KindWrite, Addr: 0x100, Size: 64}} // never flushed
	for i := 0; i < 10; i++ {
		ops = append(ops, trace.Op{Kind: trace.KindFence})
	}
	apply(s, X86{}, ops...)
	if s.gcRetired != 0 {
		t.Fatalf("GC retired %d segments; the only segment has an open persist interval", s.gcRetired)
	}
	if s.Mem.Len() != 1 {
		t.Fatalf("open-interval segment vanished: Mem.Len() = %d", s.Mem.Len())
	}
	// The checker must still catch the bug after all those epochs.
	s.opIndex = len(ops)
	X86{}.Apply(s, trace.Op{Kind: trace.KindIsPersist, Addr: 0x100, Size: 64})
	if len(s.diags) != 1 || s.diags[0].Code != CodeNotPersisted {
		t.Fatalf("isPersist after GC passes: diags = %v", s.diags)
	}
}

// TestGCNeverRetiresLiveEpoch: an interval that closed fewer than GCLag
// epochs ago must survive — a checker in the current epoch may still
// reference it.
func TestGCNeverRetiresLiveEpoch(t *testing.T) {
	s := gcState(2)
	apply(s, X86{},
		trace.Op{Kind: trace.KindWrite, Addr: 0x100, Size: 64},
		trace.Op{Kind: trace.KindFlush, Addr: 0x100, Size: 64},
		trace.Op{Kind: trace.KindFence}, // closes PI/FI at epoch 1
		trace.Op{Kind: trace.KindFence}, // epoch 2: horizon 0 < 1, keep
	)
	if s.Mem.Len() != 1 || s.gcRetired != 0 {
		t.Fatalf("segment closed within GC lag was retired: len=%d retired=%d", s.Mem.Len(), s.gcRetired)
	}
	// One more epoch ages it past the lag; now it may go.
	apply(s, X86{}, trace.Op{Kind: trace.KindFence}) // epoch 3: horizon 1 >= End 1
	if s.Mem.Len() != 0 || s.gcRetired != 1 {
		t.Fatalf("aged-out segment not retired: len=%d retired=%d", s.Mem.Len(), s.gcRetired)
	}
}

// TestGCHalfOpenSegmentSurvives: a segment whose flush interval closed
// but whose persist interval is still open (or vice versa) is live by
// definition.
func TestGCHalfOpenSegmentSurvives(t *testing.T) {
	s := gcState(1)
	// HOPS: ofence advances the epoch without closing persist intervals.
	apply(s, HOPS{},
		trace.Op{Kind: trace.KindWrite, Addr: 0x100, Size: 64},
		trace.Op{Kind: trace.KindOFence},
		trace.Op{Kind: trace.KindOFence},
		trace.Op{Kind: trace.KindOFence},
		// dfence drains: now closed at epoch 4...
		trace.Op{Kind: trace.KindDFence},
	)
	if s.Mem.Len() != 1 {
		t.Fatalf("open segment retired early: len=%d", s.Mem.Len())
	}
	// ...and two more drains age it out under lag 1.
	apply(s, HOPS{}, trace.Op{Kind: trace.KindDFence}, trace.Op{Kind: trace.KindDFence})
	if s.Mem.Len() != 0 || s.gcRetired != 1 {
		t.Fatalf("closed segment survived GC: len=%d retired=%d", s.Mem.Len(), s.gcRetired)
	}
}

// TestGCBoundsStreamingMemory is the tentpole property: over a long
// streaming trace with a rotating working set, live shadow intervals
// stay near the working-set size instead of growing with the trace.
func TestGCBoundsStreamingMemory(t *testing.T) {
	const rounds, window = 400, 8
	var ops []trace.Op
	for r := 0; r < rounds; r++ {
		for w := 0; w < window; w++ {
			a := uint64(r*window+w) * 64
			ops = append(ops,
				trace.Op{Kind: trace.KindWrite, Addr: a, Size: 64},
				trace.Op{Kind: trace.KindFlush, Addr: a, Size: 64})
		}
		ops = append(ops, trace.Op{Kind: trace.KindFence})
	}
	tr := &trace.Trace{Ops: ops}

	noGC, statsOff := CheckTraceCfg(X86{}, tr, nil, Config{Shards: 1})
	withGC, statsOn := CheckTraceCfg(X86{}, tr, nil, Config{Shards: 1, EpochGC: true})
	if !noGC.Clean() || !withGC.Clean() {
		t.Fatalf("streaming trace flagged: gc-off clean=%v gc-on clean=%v", noGC.Clean(), withGC.Clean())
	}
	if statsOff.PeakIntervals < rounds*window/2 {
		t.Fatalf("without GC expected ~%d live intervals, got %d", rounds*window, statsOff.PeakIntervals)
	}
	// With GC the peak is the working set plus the GC lag's worth of
	// closed epochs — far below the whole trace footprint.
	bound := window * 4
	if statsOn.PeakIntervals > bound {
		t.Fatalf("GC peak %d exceeds bound %d (working set %d)", statsOn.PeakIntervals, bound, window)
	}
	if statsOn.RetiredIntervals == 0 {
		t.Fatal("GC retired nothing over a 400-round streaming trace")
	}
}

// TestGCShardedEquivalenceStreaming: the same streaming shape must be
// clean and report-identical under shards=4 with GC, and each stripe's
// peak must stay bounded.
func TestGCShardedEquivalenceStreaming(t *testing.T) {
	const rounds, window = 200, 8
	var ops []trace.Op
	for r := 0; r < rounds; r++ {
		for w := 0; w < window; w++ {
			a := uint64(r*window+w) * 4096 // one line per 4 KiB chunk, striped
			ops = append(ops,
				trace.Op{Kind: trace.KindWrite, Addr: a, Size: 64},
				trace.Op{Kind: trace.KindFlush, Addr: a, Size: 64})
		}
		ops = append(ops, trace.Op{Kind: trace.KindFence})
	}
	tr := &trace.Trace{Ops: ops}
	want := renderReport(CheckTraceExcluding(X86{}, tr, nil))
	rep, stats := CheckTraceCfg(X86{}, tr, nil, Config{Shards: 4, EpochGC: true})
	if got := renderReport(rep); got != want {
		t.Fatalf("sharded+GC streaming diverges\n--- serial ---\n%s--- sharded ---\n%s", want, got)
	}
	if !stats.Sharded {
		t.Fatal("streaming trace fell back to serial")
	}
	if bound := window * 4; stats.PeakIntervals > bound {
		t.Fatalf("sharded GC peak %d exceeds bound %d", stats.PeakIntervals, bound)
	}
	if stats.RetiredIntervals == 0 {
		t.Fatal("sharded GC retired nothing")
	}
}
