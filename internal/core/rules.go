package core

import (
	"pmtest/internal/trace"
)

// RuleSet defines the checking rules for one persistency model (§4.4,
// §5.2): how each traced operation updates the persistency status and how
// checkers are validated. New models plug in by implementing RuleSet.
type RuleSet interface {
	// Name identifies the model in diagnostics and reports.
	Name() string
	// Apply processes one trace operation against the state.
	Apply(s *State, op trace.Op)
}

// dispatchCommon handles the operations whose semantics are shared by all
// models (transactions, checkers other than isOrderedBefore, scope
// control). It returns false if the op was not one of those.
func dispatchCommon(s *State, op trace.Op) bool {
	switch op.Kind {
	case trace.KindTxBegin:
		s.applyTxBegin(op)
	case trace.KindTxEnd:
		s.applyTxEnd(op)
	case trace.KindTxAdd:
		s.applyTxAdd(op)
	case trace.KindTxCheckerStart:
		s.applyTxCheckerStart(op)
	case trace.KindTxCheckerEnd:
		s.applyTxCheckerEnd(op)
	case trace.KindExclude:
		s.applyExclude(op)
	case trace.KindInclude:
		s.applyInclude(op)
	case trace.KindIsPersist:
		s.applyIsPersist(op)
	default:
		return false
	}
	return true
}

// X86 implements the strict x86 persistency model of §4.4: clwb opens a
// flush interval, sfence increments the epoch and completes prior flushes
// (closing both the flush interval and the associated persist interval).
type X86 struct{}

// Name implements RuleSet.
func (X86) Name() string { return "x86" }

// Apply implements RuleSet.
func (X86) Apply(s *State, op trace.Op) {
	if dispatchCommon(s, op) {
		return
	}
	switch op.Kind {
	case trace.KindWrite:
		s.applyWrite(op, false)
	case trace.KindWriteNT:
		// Non-temporal stores bypass the cache: the write behaves as if a
		// writeback were already pending, needing only a fence.
		s.applyWrite(op, true)
	case trace.KindFlush:
		x86Flush(s, op)
	case trace.KindFence, trace.KindDFence:
		// A dfence in an x86 trace degrades to the stronger sfence.
		x86Fence(s)
	case trace.KindOFence:
		// x86 has no ordering-only fence; sfence semantics apply.
		x86Fence(s)
	case trace.KindIsOrderedBefore:
		s.applyIsOrderedBefore(op, false)
	}
}

// x86Flush opens a flush interval for the range and raises the two
// performance warnings of §5.1.2: flushing unmodified data and flushing
// the same data twice.
func x86Flush(s *State, op trace.Op) {
	lo, hi := op.Addr, op.Addr+op.Size
	quiet := s.excluded(lo, hi)
	s.segScratch = s.Mem.ExtractOverlapAppend(s.segScratch[:0], lo, hi)
	segs := s.segScratch
	warned := false
	// Gaps in the shadow memory are ranges never written (and never
	// flushed): writing them back is unnecessary.
	next := lo
	checkGap := func(gLo, gHi uint64) {
		if gLo < gHi && !warned && !quiet && !s.excluded(gLo, gHi) {
			s.report(SeverityWarn, CodeUnnecessaryWriteback, opSite(op), "",
				"writeback of never-written range [0x%x,0x%x)", gLo, gHi)
			warned = true
		}
	}
	for _, seg := range segs {
		checkGap(next, seg.Lo)
		next = seg.Hi
		st := seg.Val
		if !quiet && !s.excluded(seg.Lo, seg.Hi) {
			switch {
			case st.HasFI && !warned:
				// A writeback is already pending or completed since the
				// last write: this clwb is redundant.
				s.report(SeverityWarn, CodeDuplicateWriteback, opSite(op), st.WriteSite,
					"range [0x%x,0x%x) already written back (flush interval %s)",
					seg.Lo, seg.Hi, st.FI)
				warned = true
			case !st.HasPI && !warned:
				s.report(SeverityWarn, CodeUnnecessaryWriteback, opSite(op), "",
					"writeback of unmodified range [0x%x,0x%x)", seg.Lo, seg.Hi)
				warned = true
			}
		}
		st.FI = EpochInterval{Start: s.T, End: Inf}
		st.HasFI = true
		s.Mem.Insert(seg.Lo, seg.Hi, st)
	}
	checkGap(next, hi)
	// Record the flush on never-written gaps too, so a second flush of the
	// same unwritten range reports "duplicate" rather than repeating
	// "unnecessary".
	for _, g := range s.Mem.Gaps(lo, hi) {
		s.Mem.Insert(g.Lo, g.Hi, status{
			FI:    EpochInterval{Start: s.T, End: Inf},
			HasFI: true,
		})
	}
}

// x86Fence implements sfence: increment the global timestamp, then close
// every open flush interval at the new epoch — and with it, the persist
// interval of each flushed range (§4.4).
func x86Fence(s *State) {
	s.T++
	s.Mem.ForEachPtr(func(lo, hi uint64, st *status) {
		if st.HasFI && st.FI.Open() {
			st.FI.End = s.T
			if st.HasPI && st.PI.Open() {
				st.PI.End = s.T
			}
		}
	})
	s.fenceEpilogue()
}

// HOPS implements the relaxed model of §5.2 (hands-off persistence
// system): ofence orders persists without writing back; dfence both orders
// and drains. There are no flush intervals.
type HOPS struct{}

// Name implements RuleSet.
func (HOPS) Name() string { return "hops" }

// Apply implements RuleSet.
func (HOPS) Apply(s *State, op trace.Op) {
	if dispatchCommon(s, op) {
		return
	}
	switch op.Kind {
	case trace.KindWrite, trace.KindWriteNT:
		s.applyWrite(op, false)
	case trace.KindFlush:
		// HOPS needs no explicit writebacks; a clwb in the trace is
		// redundant by definition.
		if !s.excluded(op.Addr, op.Addr+op.Size) {
			s.report(SeverityWarn, CodeUnnecessaryWriteback, opSite(op), "",
				"explicit writeback is unnecessary under the HOPS model")
		}
	case trace.KindOFence:
		// Ordering only: a new epoch begins but nothing is guaranteed
		// durable.
		s.T++
	case trace.KindDFence, trace.KindFence:
		// Durability fence: new epoch, and all prior writes are persisted.
		// A plain sfence in a HOPS trace is treated as the stronger fence.
		hopsDrain(s)
	case trace.KindIsOrderedBefore:
		// Fences already order persists; compare interval starts (§5.2).
		s.applyIsOrderedBefore(op, true)
	}
}

func hopsDrain(s *State) {
	s.T++
	s.Mem.ForEachPtr(func(lo, hi uint64, st *status) {
		if st.HasPI && st.PI.Open() {
			st.PI.End = s.T
		}
	})
	s.fenceEpilogue()
}

// Epoch implements a third, illustrative model in the spirit of epoch
// persistency (BPFS-style): a persist barrier ends the epoch, orders all
// earlier writes before all later ones, and guarantees earlier epochs
// drain before the next barrier completes. It demonstrates that RuleSet
// extension requires only new fence semantics (§5.2's claim).
type Epoch struct{}

// Name implements RuleSet.
func (Epoch) Name() string { return "epoch" }

// Apply implements RuleSet.
func (Epoch) Apply(s *State, op trace.Op) {
	if dispatchCommon(s, op) {
		return
	}
	switch op.Kind {
	case trace.KindWrite, trace.KindWriteNT:
		s.applyWrite(op, false)
	case trace.KindFlush:
		// Epoch hardware tracks dirty lines itself; explicit writebacks
		// are legal but pointless.
	case trace.KindFence, trace.KindOFence, trace.KindDFence:
		// A barrier closes the epoch: every write of the previous epoch is
		// ordered before (and drained by) the barrier.
		hopsDrain(s)
	case trace.KindIsOrderedBefore:
		s.applyIsOrderedBefore(op, true)
	}
}

// Models returns the built-in rule sets by name; used by the CLI tools.
func Models() map[string]RuleSet {
	return map[string]RuleSet{
		"x86":   X86{},
		"arm":   ARM{},
		"hops":  HOPS{},
		"epoch": Epoch{},
	}
}

// ShadowEntry is a read-only view of one shadow-memory segment, used by
// cmd/pmtrace to visualize persist intervals like the paper's Fig. 7.
type ShadowEntry struct {
	Lo, Hi    uint64
	PI        EpochInterval
	HasPI     bool
	FI        EpochInterval
	HasFI     bool
	WriteSite string
}

// Shadow returns the current shadow-memory contents in address order.
func (s *State) Shadow() []ShadowEntry {
	var out []ShadowEntry
	for _, seg := range s.Mem.All() {
		out = append(out, ShadowEntry{
			Lo: seg.Lo, Hi: seg.Hi,
			PI: seg.Val.PI, HasPI: seg.Val.HasPI,
			FI: seg.Val.FI, HasFI: seg.Val.HasFI,
			WriteSite: seg.Val.WriteSite,
		})
	}
	return out
}

// ARM implements the ARMv8.2 persistency primitives the paper cites
// (§2.1): DC CVAP cleans a cache line to the point of persistence
// (the role clwb plays on x86) and DSB orders and completes those cleans
// (the role of sfence). The interval semantics coincide with the x86
// rules; the separate rule set exists so traces and diagnostics carry the
// right model name and so ISA-specific divergence has a home if it ever
// appears.
type ARM struct{ X86 }

// Name implements RuleSet.
func (ARM) Name() string { return "arm" }
