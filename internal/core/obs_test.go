package core

import (
	"sync"
	"testing"
	"time"

	"pmtest/internal/obs"
	"pmtest/internal/trace"
)

func obsTxOps(writes int) []trace.Op {
	ops := []trace.Op{{Kind: trace.KindTxCheckerStart}, {Kind: trace.KindTxBegin}}
	for i := 0; i < writes; i++ {
		addr := uint64(0x1000 + i*64)
		ops = append(ops,
			trace.Op{Kind: trace.KindTxAdd, Addr: addr, Size: 64},
			trace.Op{Kind: trace.KindWrite, Addr: addr, Size: 64},
			trace.Op{Kind: trace.KindFlush, Addr: addr, Size: 64})
	}
	return append(ops, trace.Op{Kind: trace.KindFence},
		trace.Op{Kind: trace.KindTxEnd}, trace.Op{Kind: trace.KindTxCheckerEnd})
}

func TestEngineObserverLifecycle(t *testing.T) {
	m := obs.NewMetrics(16)
	e := NewEngine(Options{Workers: 2, Observer: m})
	const traces = 10
	ops := obsTxOps(8)
	for i := 0; i < traces; i++ {
		e.Submit(&trace.Trace{Thread: i % 3, Ops: ops})
	}
	e.Close()

	s := m.Snapshot()
	if s.TracesSubmitted != traces || s.TracesDequeued != traces || s.TracesChecked != traces {
		t.Fatalf("lifecycle counts = %d/%d/%d, want %d each",
			s.TracesSubmitted, s.TracesDequeued, s.TracesChecked, traces)
	}
	wantOps := uint64(traces * len(ops))
	if s.OpsSubmitted != wantOps || s.OpsChecked != wantOps {
		t.Fatalf("op counts = %d/%d, want %d", s.OpsSubmitted, s.OpsChecked, wantOps)
	}
	if s.QueueWait.Count != traces || s.CheckDur.Count != traces {
		t.Fatalf("histogram counts = %d/%d, want %d", s.QueueWait.Count, s.CheckDur.Count, traces)
	}
	if s.CheckDur.P50 <= 0 {
		t.Fatalf("check p50 = %v, want > 0", s.CheckDur.P50)
	}
	// Round-robin dispatch over two workers must touch both.
	total := uint64(0)
	for _, n := range s.PerWorkerChecked {
		total += n
	}
	if total != traces || len(s.PerWorkerChecked) != 2 ||
		s.PerWorkerChecked[0] == 0 || s.PerWorkerChecked[1] == 0 {
		t.Fatalf("per-worker counts = %v, want both non-zero summing to %d",
			s.PerWorkerChecked, traces)
	}
	if len(s.RecentTraces) == 0 || s.RecentTraces[0].Ops != len(ops) {
		t.Fatalf("recent trace ring empty or wrong: %+v", s.RecentTraces)
	}
}

func TestEngineObserverDiagCounts(t *testing.T) {
	m := obs.NewMetrics(4)
	e := NewEngine(Options{Observer: m})
	// A write that is never flushed plus an isPersist checker → one FAIL
	// with code not-persisted.
	e.Submit(&trace.Trace{Ops: []trace.Op{
		{Kind: trace.KindWrite, Addr: 0x10, Size: 64},
		{Kind: trace.KindIsPersist, Addr: 0x10, Size: 64},
	}})
	reports := e.Close()
	if len(reports) != 1 || reports[0].Fails() != 1 {
		t.Fatalf("expected one FAIL report, got %+v", reports)
	}
	s := m.Snapshot()
	if s.DiagsBySeverity["FAIL"] != 1 {
		t.Fatalf("severity tally = %v, want FAIL:1", s.DiagsBySeverity)
	}
	if s.DiagsByCode[string(CodeNotPersisted)] != 1 {
		t.Fatalf("code tally = %v, want %s:1", s.DiagsByCode, CodeNotPersisted)
	}
	ev := s.RecentTraces[0]
	if ev.Fails != 1 || ev.Codes[string(CodeNotPersisted)] != 1 || ev.TrackedOps != 1 {
		t.Fatalf("trace event wrong: %+v", ev)
	}
}

// TestEngineBackpressureStall forces Submit to block on a full
// single-slot queue and verifies the stall is observed.
func TestEngineBackpressureStall(t *testing.T) {
	m := obs.NewMetrics(4)
	e := NewEngine(Options{Workers: 1, QueueDepth: 1, Observer: m})
	// Large traces keep the single worker busy long enough for the
	// producer to overrun the one-slot queue.
	ops := obsTxOps(2000)
	for i := 0; i < 16; i++ {
		e.Submit(&trace.Trace{Ops: ops})
	}
	e.Close()
	s := m.Snapshot()
	if s.BackpressureStalls == 0 || s.BackpressureStall <= 0 {
		t.Fatalf("expected backpressure stalls, got %d (%v)",
			s.BackpressureStalls, s.BackpressureStall)
	}
}

func TestEngineQueueDepths(t *testing.T) {
	e := NewEngine(Options{Workers: 3})
	defer e.Close()
	d := e.QueueDepths()
	if len(d) != 3 {
		t.Fatalf("QueueDepths len = %d, want 3", len(d))
	}
	for i, v := range d {
		if v != 0 {
			t.Fatalf("idle queue %d depth = %d, want 0", i, v)
		}
	}
}

// TestEngineNoObserverUnchanged: with no observer the engine must behave
// exactly as before (and take no timestamps — verified by the benchmark
// suite staying within noise of the seed).
func TestEngineNoObserverUnchanged(t *testing.T) {
	e := NewEngine(Options{Workers: 2})
	for i := 0; i < 5; i++ {
		e.Submit(&trace.Trace{Ops: obsTxOps(4)})
	}
	reports := e.Close()
	if len(reports) != 5 {
		t.Fatalf("got %d reports, want 5", len(reports))
	}
	for _, r := range reports {
		if !r.Clean() {
			t.Fatalf("clean trace flagged: %s", r.Summary())
		}
	}
}

// TestEngineConcurrentSubmitWait is the regression test for mixing
// Submit, Wait and report reads from concurrent goroutines (the
// GetResult path): the seed's sync.WaitGroup-based pending counter was
// vulnerable to "Add called concurrently with Wait" misuse; the engine
// now serializes the counters under its mutex. Run under -race.
func TestEngineConcurrentSubmitWait(t *testing.T) {
	e := NewEngine(Options{Workers: 4, QueueDepth: 8})
	ops := obsTxOps(16)
	const producers = 4
	const perProducer = 50

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				e.Submit(&trace.Trace{Ops: ops})
			}
		}()
	}
	// Concurrent waiters polling results while producers are still
	// submitting (PMTest_GET_RESULT from a monitoring thread).
	stop := make(chan struct{})
	var waiters sync.WaitGroup
	for w := 0; w < 2; w++ {
		waiters.Add(1)
		go func() {
			defer waiters.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				reports := e.Wait()
				for _, r := range reports {
					if r.Ops != len(ops) {
						t.Errorf("report ops = %d, want %d", r.Ops, len(ops))
						return
					}
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	close(stop)
	waiters.Wait()
	reports := e.Close()
	if len(reports) != producers*perProducer {
		t.Fatalf("got %d reports, want %d", len(reports), producers*perProducer)
	}
	// IDs must be unique and dense.
	seen := make(map[int]bool, len(reports))
	for _, r := range reports {
		if seen[r.TraceID] {
			t.Fatalf("duplicate trace id %d", r.TraceID)
		}
		seen[r.TraceID] = true
	}
}

// TestTrackOnlyReportsTrackedOps: TrackOnly runs must carry the
// non-checker op count so framework-overhead measurements have real
// data (Fig. 10b).
func TestTrackOnlyReportsTrackedOps(t *testing.T) {
	ops := []trace.Op{
		{Kind: trace.KindTxCheckerStart}, // checker
		{Kind: trace.KindWrite, Addr: 0x10, Size: 64},
		{Kind: trace.KindFlush, Addr: 0x10, Size: 64},
		{Kind: trace.KindFence},
		{Kind: trace.KindIsPersist, Addr: 0x10, Size: 64}, // checker
		{Kind: trace.KindTxCheckerEnd},                    // checker
	}
	e := NewEngine(Options{TrackOnly: true})
	e.Submit(&trace.Trace{Ops: ops})
	reports := e.Close()
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
	r := reports[0]
	if r.Ops != 6 || r.TrackedOps != 3 {
		t.Fatalf("Ops/TrackedOps = %d/%d, want 6/3", r.Ops, r.TrackedOps)
	}
	if len(r.Diags) != 0 {
		t.Fatalf("track-only run produced diagnostics: %+v", r.Diags)
	}
	// Full checking reports the same tracked-op count.
	full := CheckTrace(X86{}, &trace.Trace{Ops: ops})
	if full.TrackedOps != 3 {
		t.Fatalf("checked TrackedOps = %d, want 3", full.TrackedOps)
	}
}

func TestSharingAnalyzerMetrics(t *testing.T) {
	m := obs.NewMetrics(4)
	a := NewSharingAnalyzer(nil)
	a.SetMetrics(m)
	a.Feed(&trace.Trace{Thread: 0, Ops: []trace.Op{
		{Kind: trace.KindWrite, Addr: 0x100, Size: 64},
		{Kind: trace.KindFlush, Addr: 0x100, Size: 64}, // not a write
	}})
	a.Feed(&trace.Trace{Thread: 1, Ops: []trace.Op{
		{Kind: trace.KindWrite, Addr: 0x120, Size: 64},
	}})
	if got := m.SharingTracesFed.Load(); got != 2 {
		t.Fatalf("traces fed = %d, want 2", got)
	}
	if got := m.SharingWritesTracked.Load(); got != 2 {
		t.Fatalf("writes tracked = %d, want 2", got)
	}
	if shared := a.Shared(); len(shared) != 1 {
		t.Fatalf("shared ranges = %+v, want one overlap", shared)
	}
}
